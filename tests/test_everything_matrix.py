"""The grand integration matrix: every application x every compilation
mode x several machine sizes, all validated against sequential
execution.  Slowest pieces use small problem sizes; this file is the
broad safety net behind refactorings."""

import numpy as np
import pytest

from repro.apps import (
    FIG1,
    FIG4,
    FIG15,
    adi_source,
    dgefa_reference_lu,
    dgefa_source,
    make_dgefa_init,
    cg_source,
    stencil1d_source,
    stencil2d_source,
    wave_source,
)
from repro.core import DynOpt, Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import FREE

APPS = [
    ("fig1", FIG1, "x", None),
    ("fig4", FIG4, "x", None),
    ("fig15", FIG15, "x", None),
    ("stencil1d", stencil1d_source(48, 2), "x", None),
    ("stencil2d", stencil2d_source(16, 2), "a", None),
    ("adi", adi_source(12, 2), "a", None),
    ("wave", wave_source(48, 2), "u", None),
    ("dgefa", dgefa_source(10), "a", make_dgefa_init(10)),
    ("cg", cg_source(32, 4), "x", None),
]

MODES = [Mode.INTER, Mode.INTRA, Mode.RTR]


@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
@pytest.mark.parametrize(
    "name,src,arr,init", APPS, ids=[a[0] for a in APPS]
)
def test_app_mode_matrix(name, src, arr, init, mode):
    if init is not None:
        ref_frame = run_sequential(parse(src), init_fn=init)
    else:
        ref_frame = run_sequential(parse(src))
    ref = ref_frame.arrays[arr].data
    cp = compile_program(src, Options(nprocs=4, mode=mode))
    res = cp.run(cost=FREE, init_fn=init, timeout_s=120)
    got = res.gathered(arr)
    assert np.allclose(got, ref), f"{name} under {mode}"


@pytest.mark.parametrize("P", [1, 2, 3, 5, 8])
def test_processor_scaling_matrix(P):
    for name, src, arr, init in APPS[:4]:
        ref_frame = run_sequential(parse(src))
        ref = ref_frame.arrays[arr].data
        cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
        res = cp.run(cost=FREE, init_fn=init, timeout_s=120)
        assert np.allclose(res.gathered(arr), ref), (name, P)


@pytest.mark.parametrize("dyn", list(DynOpt))
def test_dynopt_matrix(dyn):
    for src, arr in ((FIG15, "x"), (adi_source(12, 2), "a")):
        ref = run_sequential(parse(src)).arrays[arr].data
        cp = compile_program(
            src, Options(nprocs=4, mode=Mode.INTER, dynopt=dyn)
        )
        res = cp.run(cost=FREE, timeout_s=120)
        assert np.allclose(res.gathered(arr), ref), (arr, dyn)


class TestCompileDeterminism:
    def test_same_input_same_output(self):
        """Compilation is deterministic: identical node programs and
        identical run statistics across repeated compilations."""
        a = compile_program(FIG4, Options(nprocs=4))
        b = compile_program(FIG4, Options(nprocs=4))
        assert a.text() == b.text()
        ra = a.run(cost=FREE)
        rb = b.run(cost=FREE)
        assert ra.stats.messages == rb.stats.messages
        assert ra.stats.bytes == rb.stats.bytes
        assert np.allclose(ra.gathered("x"), rb.gathered("x"))

    def test_simulated_times_reproducible(self):
        from repro.machine import IPSC860

        t = [
            compile_program(FIG1, Options(nprocs=4)).run(cost=IPSC860)
            .stats.time_us
            for _ in range(3)
        ]
        assert t[0] == t[1] == t[2]
