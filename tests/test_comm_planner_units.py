"""Unit tests for communication-planning building blocks: section
expansion, classification, translation across call sites."""

import pytest

from repro.analysis.rsd import RSD, Range, SymDim
from repro.callgraph.acg import ACG, LoopInfo
from repro.core.communication import (
    expand_section,
    subs_to_section,
    translate_section,
)
from repro.core.model import PendingComm
from repro.lang import ast as A
from repro.lang import parse


def loop(var, lo, hi, depth=1):
    lo_e = lo if isinstance(lo, A.Expr) else A.Num(lo)
    hi_e = hi if isinstance(hi, A.Expr) else A.Num(hi)
    return LoopInfo(var, lo_e, hi_e, A.ONE,
                    A.Do(var, lo_e, hi_e, A.ONE, []), depth)


class TestSubsToSection:
    def test_constant_subscripts(self):
        sec = subs_to_section((A.Num(5), A.Num(7)), [], {})
        assert sec == RSD((Range(5, 5), Range(7, 7)))

    def test_symbolic_subscripts(self):
        sec = subs_to_section((A.Var("i"),), [loop("i", 1, 10)], {})
        assert isinstance(sec.dims[0], SymDim)

    def test_param_folding(self):
        sec = subs_to_section((A.Var("n"),), [], {"n": 42})
        assert sec == RSD((Range(42, 42),))


class TestExpandSection:
    def test_expands_deep_loop_dims(self):
        i = loop("i", 1, 100)
        sec = RSD((Range(26, 30), SymDim(A.Var("i"))))
        out = expand_section(sec, [i], 0, {})
        assert out == RSD((Range(26, 30), Range(1, 100)))

    def test_keeps_shallow_loop_dims(self):
        i = loop("i", 1, 100)
        sec = RSD((SymDim(A.Var("i")),))
        out = expand_section(sec, [i], 1, {})  # level 1: i is fixed
        assert isinstance(out.dims[0], SymDim)

    def test_offset_expansion(self):
        i = loop("i", 1, 95)
        sec = RSD((SymDim(A.BinOp("+", A.Var("i"), A.Num(5))),))
        out = expand_section(sec, [i], 0, {})
        assert out == RSD((Range(6, 100),))

    def test_symbolic_bounds_stay_symbolic(self):
        k = loop("k", A.BinOp("+", A.Var("m"), A.Num(1)), A.Var("n"))
        sec = RSD((SymDim(A.Var("k")),))
        out = expand_section(sec, [k], 0, {})
        d = out.dims[0]
        assert isinstance(d, SymDim) and d.hi is not None

    def test_non_loop_dims_untouched(self):
        i = loop("i", 1, 10)
        sec = RSD((SymDim(A.Var("q")), Range(1, 3)))
        out = expand_section(sec, [i], 0, {})
        assert out == sec


class TestTranslateSection:
    def test_formal_to_actual_rename(self):
        sec = RSD((SymDim(A.Var("k")),))
        out = translate_section(sec, {"k": A.Var("m")}, {})
        assert out == RSD((SymDim(A.Var("m")),))

    def test_formal_to_constant_folds(self):
        sec = RSD((SymDim(A.Var("k")),))
        out = translate_section(sec, {"k": A.Num(7)}, {})
        assert out == RSD((Range(7, 7),))

    def test_symbolic_range_translation(self):
        sec = RSD((SymDim(A.BinOp("+", A.Var("k"), A.Num(1)), A.Var("n")),))
        out = translate_section(sec, {"k": A.Num(3), "n": A.Num(10)}, {})
        assert out == RSD((Range(4, 10),))

    def test_numeric_dims_pass_through(self):
        sec = RSD((Range(1, 5),))
        assert translate_section(sec, {"x": A.Num(9)}, {}) == sec

    def test_env_constants_fold(self):
        sec = RSD((SymDim(A.Var("k"), A.Var("n")),))
        out = translate_section(sec, {"k": A.Var("k")}, {"n": 20, "k": 2})
        assert out == RSD((Range(2, 20),))


class TestPendingCommDescribe:
    def test_shift_describe(self):
        from repro.dist.distribution import DimDistribution

        dim = DimDistribution.make("block", 1, 100, 4)
        p = PendingComm("x", "shift", 0, dim, RSD((Range(6, 30),)),
                        delta=5, origin="t")
        assert "shift(5)" in p.describe()

    def test_bcast_describe(self):
        from repro.dist.distribution import DimDistribution

        dim = DimDistribution.make("cyclic", 1, 16, 4)
        p = PendingComm("a", "bcast", 1, dim, RSD((Range(1, 16),)),
                        at=A.Var("k"), origin="t")
        assert "bcast@k" in p.describe()
