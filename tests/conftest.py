"""Shared test configuration.

Deadlocks are detected instantly by the simulator's wait-for graph, so
the wall-clock timeout is only a safety net for detector regressions.
Keep it short in the suite: a bug should cost seconds, not the old
60-second silence.  Tests that need a specific value still win — an
explicit ``timeout_s=`` beats the environment, and ``setdefault`` never
overrides a value the invoker exported.
"""

import os

os.environ.setdefault("REPRO_SIM_TIMEOUT", "20")
