"""Tests for overlap estimation (§5.6, Fig. 13) and the Figure-2-style
localization / parameterized overlaps (Fig. 14)."""

import numpy as np

from repro.apps import FIG1, FIG4, fig1_source
from repro.callgraph.acg import ACG
from repro.core import Mode, Options, compile_program
from repro.core.localize import (
    layout_summary,
    local_declaration,
    localized_procedure_text,
    parameterized_declaration,
)
from repro.core.overlaps import (
    estimate_overlaps,
    local_offsets,
    validate_overlaps,
)
from repro.dist import Distribution
from repro.lang import ast as A
from repro.lang import parse
from repro.lang.ast import DistSpec


class TestLocalOffsets:
    def test_fig13_example(self):
        """Z(k+5, i) gives overlap offset (+5, 0)."""
        src = (
            "subroutine f2(z, i)\nreal z(100,100)\n"
            "do k = 1, 95\nz(k, i) = f(z(k+5, i))\nenddo\nend\n"
        )
        proc = parse(src).units[0]
        offs = local_offsets(proc)
        assert offs["z"] == [(0, 5), (0, 0)]

    def test_negative_offsets(self):
        src = (
            "subroutine g(x)\nreal x(50)\n"
            "do i = 4, 50\nx(i) = x(i - 3) + x(i + 2)\nenddo\nend\n"
        )
        offs = local_offsets(parse(src).units[0])
        assert offs["x"] == [(-3, 2)]

    def test_constant_subscripts_ignored(self):
        src = "subroutine g(x)\nreal x(50)\nx(7) = 1\nend\n"
        offs = local_offsets(parse(src).units[0])
        assert offs["x"] == [(0, 0)]


class TestInterproceduralEstimate:
    def test_fig13_propagation(self):
        """The Z(k+5, i) offset propagates through F1 to X and Y in P1
        (the paper's overlap example: X gets [26:30, 100], Y none in the
        distributed dimension)."""
        acg = ACG(parse(FIG4))
        est = estimate_overlaps(acg)
        assert est.per_proc[("p1", "x")] == [(0, 5), (0, 0)]
        assert est.per_proc[("p1", "y")] == [(0, 5), (0, 0)]
        # broadcast back down: F1's formal inherits the estimate
        assert est.per_proc[("f1", "z")] == [(0, 5), (0, 0)]

    def test_estimate_covers_actual_fig1(self):
        acg = ACG(parse(FIG1))
        est = estimate_overlaps(acg)
        cp = compile_program(FIG1, Options(nprocs=4))
        v = validate_overlaps(est, cp.report.overlaps)
        assert v.sufficient
        assert v.buffer_fallbacks == []

    def test_undersized_estimate_detected(self):
        est_acg = ACG(parse(FIG1))
        est = estimate_overlaps(est_acg)
        # pretend codegen needed a bigger overlap than estimated
        fake_actual = {("p1", "x"): [(0, 99)]}
        v = validate_overlaps(est, fake_actual)
        assert not v.sufficient
        assert ("p1", "x", 0) in v.buffer_fallbacks

    def test_compiled_overlaps_reported(self):
        cp = compile_program(FIG1, Options(nprocs=4))
        assert cp.report.overlaps[("p1", "x")] == [(0, 5)]


class TestLocalization:
    def dist1d(self, n=100, P=4):
        return Distribution.from_specs([DistSpec("block")], [(1, n)], P)

    def test_local_declaration_fig2(self):
        """REAL X(100) block over 4 with overlap 5 -> REAL X(30)."""
        decl = A.Decl("real", "x", [(A.ONE, A.Num(100))])
        out = local_declaration(decl, self.dist1d(), [(0, 5)])
        assert out.dims == [(A.Num(1), A.Num(30))]

    def test_local_declaration_2d_row(self):
        decl = A.Decl("real", "x", [(A.ONE, A.Num(100)), (A.ONE, A.Num(100))])
        dist = Distribution.from_specs(
            [DistSpec("block"), DistSpec("none")], [(1, 100), (1, 100)], 4
        )
        out = local_declaration(decl, dist, [(0, 5), (0, 0)])
        assert out.dims[0] == (A.Num(1), A.Num(30))
        assert out.dims[1] == (A.ONE, A.Num(100))

    def test_parameterized_declaration_fig14(self):
        decl = A.Decl("real", "x", [(A.ONE, A.Num(100))])
        out, extra = parameterized_declaration(decl, self.dist1d())
        assert extra == ["xlo", "xhi"]
        assert out.dims == [(A.Var("xlo"), A.Var("xhi"))]

    def test_localized_text_fig2_style(self):
        cp = compile_program(FIG1, Options(nprocs=4))
        f1 = cp.program.unit("f1")
        dists = {"x": self.dist1d()}
        text = localized_procedure_text(
            f1, dists, {"x": cp.report.overlaps.get(("f1", "x"), [(0, 5)])}
        )
        assert "real x(30)" in text

    def test_localized_parameterized_fig14(self):
        cp = compile_program(FIG1, Options(nprocs=4))
        f1 = cp.program.unit("f1")
        text = localized_procedure_text(
            f1, {"x": self.dist1d()}, {"x": [(0, 5)]}, parameterized=True
        )
        assert "subroutine f1(x, xlo, xhi)" in text
        assert "real x(xlo:xhi)" in text

    def test_layout_summary(self):
        layouts = layout_summary({"x": self.dist1d()}, {"x": [(0, 5)]})
        (l,) = layouts
        assert (l.array, l.block, l.lo_overlap, l.hi_overlap) == \
            ("x", 25, 0, 5)

    def test_replicated_arrays_untouched(self):
        dist = Distribution.replicated([(1, 10)], 4)
        assert layout_summary({"w": dist}, {}) == []
