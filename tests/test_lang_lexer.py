"""Unit tests for the Fortran D lexer."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokKind


def kinds(src):
    return [t.kind for t in tokenize(src) if t.kind is not TokKind.NEWLINE]


def texts(src):
    return [
        t.text
        for t in tokenize(src)
        if t.kind not in (TokKind.NEWLINE, TokKind.EOF)
    ]


class TestBasicTokens:
    def test_identifiers_lowercased(self):
        assert texts("Foo BAR baz") == ["foo", "bar", "baz"]

    def test_dollar_in_identifier(self):
        assert texts("my$p ub$1") == ["my$p", "ub$1"]

    def test_keywords_recognized(self):
        toks = tokenize("do if endif enddo")
        assert all(t.kind is TokKind.KEYWORD for t in toks[:4])

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokKind.INT
        assert toks[0].text == "42"

    def test_real_literals(self):
        for src in ("3.14", "1.", "1e5", "2.5e-3", "1d0"):
            toks = tokenize(src)
            assert toks[0].kind is TokKind.REAL, src

    def test_double_exponent_normalized(self):
        assert tokenize("1d0")[0].text == "1e0"

    def test_leading_dot_real(self):
        toks = tokenize("x = .5")
        assert toks[2].kind is TokKind.REAL

    def test_string_literal(self):
        toks = tokenize("print *, 'hello world'")
        strs = [t for t in toks if t.kind is TokKind.STRING]
        assert strs[0].text == "hello world"


class TestOperators:
    def test_dotted_operators_canonicalized(self):
        assert texts("a .eq. b .ne. c") == ["a", "==", "b", "/=", "c"]
        assert texts("a .lt. b .le. c") == ["a", "<", "b", "<=", "c"]
        assert texts("a .gt. b .ge. c") == ["a", ">", "b", ">=", "c"]

    def test_logical_operators(self):
        assert ".and." in texts("a .and. b")
        assert ".or." in texts("a .or. b")
        assert ".not." in texts(".not. a")

    def test_power_operator(self):
        assert texts("a ** b") == ["a", "**", "b"]

    def test_integer_dot_op_disambiguation(self):
        # `1.eq.2` must lex as INT . OP . INT, not a real `1.`
        ts = texts("if (i.eq.1) stop")
        assert "==" in ts
        assert "1" in ts

    def test_modern_comparison_ops(self):
        assert texts("a == b /= c <= d >= e") == [
            "a", "==", "b", "/=", "c", "<=", "d", ">=", "e",
        ]


class TestLinesAndComments:
    def test_comment_lines_skipped(self):
        src = "! comment\n* star comment\nx = 1\n"
        assert texts(src) == ["x", "=", "1"]

    def test_c_lines_are_code_not_comments(self):
        # free-form dialect: `c = 1` is an assignment, not a comment
        assert texts("c = 1") == ["c", "=", "1"]

    def test_inline_comment_stripped(self):
        assert texts("x = 1 ! trailing") == ["x", "=", "1"]

    def test_exclamation_in_string_kept(self):
        toks = tokenize("print *, 'a!b'")
        strs = [t for t in toks if t.kind is TokKind.STRING]
        assert strs[0].text == "a!b"

    def test_continuation_lines_joined(self):
        src = "x = 1 + &\n    2\n"
        assert texts(src) == ["x", "=", "1", "+", "2"]

    def test_dangling_continuation_raises(self):
        with pytest.raises(LexError):
            tokenize("x = 1 + &\n")

    def test_newline_tokens_per_statement(self):
        toks = tokenize("x = 1\ny = 2\n")
        nls = [t for t in toks if t.kind is TokKind.NEWLINE]
        assert len(nls) == 2

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind is TokKind.EOF
        assert tokenize("x = 1")[-1].kind is TokKind.EOF

    def test_line_numbers_tracked(self):
        toks = tokenize("a = 1\n\nb = 2\n")
        b = [t for t in toks if t.text == "b"][0]
        assert b.line == 3

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("x = #")
