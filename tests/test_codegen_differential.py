"""Differential suite for generated node programs (repro.codegen).

The generated path must be an *invisible* perf optimization: per-rank
arrays, virtual clocks, delivery statistics, and printed output are
bit-identical to the closure-tree interpreter on every scheduler
backend, under fault injection, with and without vectorization — and
every cache malfunction (poisoned entry, unreadable file, stale
generator version) silently regenerates instead of failing or, worse,
executing the wrong module.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.codegen as codegen
import repro.codegen.emit as emit_mod
from repro.apps.adi import adi_source
from repro.apps.cg import cg_source
from repro.apps.dgefa import dgefa_source, make_dgefa_init
from repro.apps.stencil import stencil1d_source, stencil2d_source
from repro.apps.wave import wave_source
from repro.codegen import (
    CodegenError,
    GEN_COUNTS,
    get_generated,
    rank_classes,
    reset_memory,
)
from repro.codegen.cache import entry_path, entry_stem, program_key
from repro.core.driver import compile_program
from repro.core.options import Mode, Options
from repro.lang import ast as A
from repro.machine import FaultPlan
from repro.obs import Tracer

STAT_FIELDS = (
    "messages", "bytes", "collectives", "collective_bytes",
    "remaps", "remap_bytes", "guards",
)

CASES = [
    ("stencil1d", stencil1d_source(128, 4), None),
    ("stencil2d", stencil2d_source(24, 2), None),
    ("adi", adi_source(32, 2), None),
    ("cg", cg_source(32, 4), None),
    ("dgefa", dgefa_source(16), make_dgefa_init(16)),
    ("wave", wave_source(64, 4), None),
]
SEEDS = [1, 3]


@pytest.fixture
def codegen_tmp(monkeypatch, tmp_path):
    """Isolate the disk cache and the in-process memo per test."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    reset_memory()
    yield tmp_path
    reset_memory()


def _chaos_plan(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, delay_prob=0.5, delay_max_us=80.0,
                     drop_prob=0.1, retry_timeout_us=50.0)


def _run(cp, init, scheduler, **kw):
    extra = {"init_fn": init} if init is not None else {}
    return cp.run(timeout_s=30.0, scheduler=scheduler, **extra, **kw)


def _assert_identical(a, b, label):
    assert a.stats.proc_times == b.stats.proc_times, label
    for f in STAT_FIELDS:
        assert getattr(a.stats, f) == getattr(b.stats, f), (label, f)
    for name in a.frames[0].arrays:
        for rk, (fa, fb) in enumerate(zip(a.frames, b.frames)):
            assert np.array_equal(
                fa.arrays[name].data, fb.arrays[name].data,
                equal_nan=True,
            ), f"{label}: array {name} differs on rank {rk}"
    assert sorted(a.prints) == sorted(b.prints), label


# ---------------------------------------------------------------------------
# bit-identity: generated vs interpreter, all backends, under faults
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "src,init", [c[1:] for c in CASES], ids=[c[0] for c in CASES]
)
def test_apps_bit_identical_generated_vs_interpreter(src, init, seed):
    cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
    plan = _chaos_plan(seed)
    ref = _run(cp, init, "coop", faults=plan, codegen=False)
    for sched in ("coop", "threads", "event"):
        gen = _run(cp, init, sched, faults=plan, codegen=True)
        _assert_identical(ref, gen, f"codegen {sched} seed={seed}")


@pytest.mark.parametrize("vectorize", [False, True],
                         ids=["scalar", "vectorized"])
def test_vectorize_axis_bit_identical(vectorize):
    """The generated vectorizer must make block decisions identical to
    the interpreter's in both switch positions."""
    cp = compile_program(stencil1d_source(128, 4),
                         Options(nprocs=4, mode=Mode.INTER))
    ref = _run(cp, None, "coop", vectorize=vectorize, codegen=False)
    for sched in ("coop", "event"):
        gen = _run(cp, None, sched, vectorize=vectorize, codegen=True)
        _assert_identical(ref, gen, f"vec={vectorize} {sched}")


@pytest.mark.parametrize("mode", [Mode.INTER, Mode.RTR],
                         ids=["inter", "rtr"])
def test_modes_bit_identical(mode):
    """RTR's owner-guard + element-message style stresses the emitter's
    guard and comm lowering hardest."""
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=mode))
    ref = _run(cp, None, "coop", codegen=False)
    _assert_identical(ref, _run(cp, None, "coop", codegen=True),
                      f"{mode.value} coop")
    _assert_identical(ref, _run(cp, None, "event", codegen=True),
                      f"{mode.value} event")


def test_no_demotions_on_paper_apps():
    """Every procedure of every paper app must lower; a demotion here
    means the generator regressed."""
    for name, src, _ in CASES:
        cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
        gen, _, _ = get_generated(cp.program, 4, True)
        assert gen.demotions == [], (name, gen.demotions)


# ---------------------------------------------------------------------------
# caching: memory, disk, poisoning
# ---------------------------------------------------------------------------


def test_warm_run_skips_generation(codegen_tmp, monkeypatch):
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    # compile_program may itself prewarm; start from a clean slate
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(codegen_tmp / "fresh"))
    reset_memory()
    gen, hits, misses = get_generated(cp.program, 4, True)
    assert misses == len(gen.modules) and hits == 0
    assert GEN_COUNTS["generated"] == len(gen.modules)
    # in-process memo
    gen2, hits2, misses2 = get_generated(cp.program, 4, True)
    assert gen2 is gen and misses2 == 0 and hits2 == len(gen.modules)
    assert GEN_COUNTS["generated"] == len(gen.modules)  # unchanged
    # disk (fresh process simulated by dropping the memo)
    reset_memory()
    gen3, hits3, misses3 = get_generated(cp.program, 4, True)
    assert misses3 == 0 and hits3 == len(gen3.modules)
    assert GEN_COUNTS["generated"] == 0
    assert GEN_COUNTS["disk"] == len(gen3.modules)


def test_run_surfaces_codegen_counters(codegen_tmp):
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    res = _run(cp, None, "coop", codegen=True)
    s = res.stats
    ncls = len(rank_classes(4))
    assert s.codegen_cache_hits + s.codegen_cache_misses == ncls
    assert s.codegen_demotions == 0
    d = s.as_dict()
    for key in ("codegen_cache_hits", "codegen_cache_misses",
                "codegen_demotions", "compile_cache_hits",
                "compile_cache_misses"):
        assert key in d
    assert "codegen=" in s.sched_summary()
    # second run: every module comes from cache
    res2 = _run(cp, None, "coop", codegen=True)
    assert res2.stats.codegen_cache_hits == ncls
    assert res2.stats.codegen_cache_misses == 0
    # the interpreter-only path records nothing
    res3 = _run(cp, None, "coop", codegen=False)
    assert res3.stats.codegen_cache_hits == 0
    assert res3.stats.codegen_cache_misses == 0


def _entry_for(cp, cls="mid"):
    key = program_key(repr(cp.program), 4, True)
    return entry_path(entry_stem(key, 4, True, cls))


def test_poisoned_disk_entry_regenerated(codegen_tmp):
    """A tampered entry (bad header) must be ignored and rewritten."""
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    gen, _, _ = get_generated(cp.program, 4, True)
    path = _entry_for(cp)
    src = open(path).read()
    with open(path, "w") as f:
        f.write("# tampered\n" + src.split("\n", 1)[1])
    reset_memory()
    gen2, hits, misses = get_generated(cp.program, 4, True)
    assert misses >= 1  # the poisoned class was regenerated
    assert open(path).read() == src  # and the entry was healed
    ref = _run(cp, None, "coop", codegen=False)
    _assert_identical(ref, _run(cp, None, "coop", codegen=True),
                      "post-poison")


def test_corrupt_body_regenerated(codegen_tmp):
    """A valid header with an unloadable body (truncation) is a miss."""
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    get_generated(cp.program, 4, True)
    path = _entry_for(cp)
    src = open(path).read()
    with open(path, "w") as f:
        f.write(src[: len(src) // 2] + "\ndef broken(:\n")
    reset_memory()
    _, hits, misses = get_generated(cp.program, 4, True)
    assert misses >= 1
    assert open(path).read() == src


def test_unreadable_entry_regenerated(codegen_tmp):
    """An entry that cannot be opened (here: it is a directory) is
    treated as a miss; generation proceeds and the run still works."""
    import os

    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    reset_memory()  # compile_program may have prewarmed the memo
    path = _entry_for(cp)
    if os.path.isfile(path):  # prewarm may have written the entry
        os.unlink(path)
    os.makedirs(path, exist_ok=True)  # open() -> IsADirectoryError
    gen, hits, misses = get_generated(cp.program, 4, True)
    assert misses >= 1  # the unreadable class regenerated
    ref = _run(cp, None, "coop", codegen=False)
    _assert_identical(ref, _run(cp, None, "coop", codegen=True),
                      "unreadable-entry")


def test_vectorize_keys_are_distinct(codegen_tmp):
    """vec on/off generate under different keys — a stale-entry mixup
    between the two would silently skew charges."""
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    a, _, _ = get_generated(cp.program, 4, True)
    b, _, _ = get_generated(cp.program, 4, False)
    assert a.key != b.key
    assert a is not b


# ---------------------------------------------------------------------------
# demotion and --strict
# ---------------------------------------------------------------------------


def test_demotion_falls_back_and_traces(codegen_tmp, monkeypatch):
    """An emitter-unsupported construct demotes that procedure to the
    interpreter — bit-identical results, counted in RunStats, and a
    traced codegen-demotion decision."""
    monkeypatch.setattr(emit_mod, "UNSUPPORTED_STMTS", (A.Do,))
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    tracer = Tracer()
    gen_res = _run(cp, None, "coop", codegen=True, trace=tracer)
    assert gen_res.stats.codegen_demotions > 0
    names = [e["name"] for e in tracer.host_events
             if e["kind"] == "compile.decision"]
    assert "codegen-demotion" in names
    monkeypatch.setattr(emit_mod, "UNSUPPORTED_STMTS", ())
    reset_memory()
    ref = _run(cp, None, "coop", codegen=False)
    _assert_identical(ref, gen_res, "demoted-vs-interpreter")


def test_partial_demotion_mixes_paths(codegen_tmp, monkeypatch):
    """Demoting only some procedures leaves the rest generated; the
    mid-run handoff — generated main calling an interpreter-demoted
    callee — must stay bit-identical too, on both backend kinds."""
    monkeypatch.setattr(emit_mod, "UNSUPPORTED_STMTS", (A.If,))
    init = make_dgefa_init(16)
    cp = compile_program(dgefa_source(16),
                         Options(nprocs=4, mode=Mode.INTER))
    gen, _, _ = get_generated(cp.program, 4, True)
    demoted = {proc for _, _, proc, _ in gen.demotions}
    all_procs = {u.name for u in cp.program.units}
    assert demoted and demoted < all_procs  # strictly partial
    assert cp.program.main.name not in demoted  # main stays generated
    gen_coop = _run(cp, init, "coop", codegen=True)
    gen_event = _run(cp, init, "event", codegen=True)
    monkeypatch.setattr(emit_mod, "UNSUPPORTED_STMTS", ())
    reset_memory()
    ref = _run(cp, init, "coop", codegen=False)
    _assert_identical(ref, gen_coop, "partial-demotion coop")
    _assert_identical(ref, gen_event, "partial-demotion event")


def test_strict_escalates_demotion(codegen_tmp, monkeypatch):
    monkeypatch.setattr(emit_mod, "UNSUPPORTED_STMTS", (A.Do,))
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    with pytest.raises(CodegenError, match="demoted under --strict"):
        get_generated(cp.program, 4, True, strict=True)
    # non-strict proceeds on the same (memoized) generation
    gen, _, _ = get_generated(cp.program, 4, True)
    assert gen.demotions


def test_strict_compile_fails_on_demotion(codegen_tmp, monkeypatch):
    """Options.strict turns a codegen demotion into a compile error
    (the driver prewarm path)."""
    from repro.core.driver import CompileError

    monkeypatch.setattr(emit_mod, "UNSUPPORTED_STMTS", (A.Do,))
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
    with pytest.raises(CompileError, match="demoted under --strict"):
        compile_program(stencil1d_source(96, 3),
                        Options(nprocs=4, mode=Mode.INTER, strict=True))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_codegen_flags(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "cache"))
    reset_memory()
    f = tmp_path / "prog.fd"
    f.write_text(stencil1d_source(64, 2))
    rc = main([str(f), "--run", "--no-text", "--report", "--codegen"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "codegen=" in out and "compile-cache=" in out
    rc = main([str(f), "--run", "--no-text", "--no-codegen"])
    assert rc == 0
    dump = tmp_path / "gen.py"
    rc = main([str(f), "--no-text", "--codegen-dump", str(dump)])
    assert rc == 0
    text = dump.read_text()
    assert "rank class" in text and "UNITS" in text
    compile(text, str(dump), "exec")  # dump is well-formed python
    reset_memory()
