"""End-to-end compilation tests for the paper's worked examples.

Every test compiles a figure's program, runs it on the simulated
machine, checks the results against sequential execution, and asserts
the *shape* the paper derives by hand (message counts, bounds reduction,
remap ladders).
"""

import numpy as np
import pytest

from repro.apps import FIG1, FIG4, FIG15, fig1_source, fig4_source
from repro.core import DynOpt, Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE


def run_modes(src, arr, P=4, modes=(Mode.INTER,), dynopt=DynOpt.KILLS,
              cost=FREE):
    seq = run_sequential(parse(src)).arrays[arr].data
    out = {}
    for mode in modes:
        cp = compile_program(src, Options(nprocs=P, mode=mode, dynopt=dynopt))
        res = cp.run(cost=cost)
        assert np.allclose(res.gathered(arr), seq), f"{mode} wrong results"
        out[mode] = (cp, res)
    return out


class TestFig1:
    """Figure 1 -> Figure 2: block-distributed shift."""

    def test_results_match_all_modes(self):
        run_modes(FIG1, "x", modes=(Mode.INTER, Mode.INTRA, Mode.RTR))

    def test_inter_message_shape(self):
        (_cp, res), = run_modes(FIG1, "x").values()
        # two shift points (main loop + f1's loop), vectorized: one
        # 5-element message per neighbour pair each
        assert res.stats.messages == 2 * 3
        assert res.stats.bytes == 2 * 3 * 5 * 8

    def test_loop_bounds_reduced(self):
        cp, _res = run_modes(FIG1, "x")[Mode.INTER]
        f1 = cp.program.unit("f1")
        loop = [s for s in A.walk_stmts(f1.body) if isinstance(s, A.Do)][0]
        # Figure 2: ub$1 = min(95, ...) and lb depends on my$p
        from repro.lang.printer import expr_str

        assert "my$p" in expr_str(loop.lo)
        assert "min" in expr_str(loop.hi)

    def test_rtr_messages_elementwise(self):
        _, res = run_modes(FIG1, "x", modes=(Mode.RTR,))[Mode.RTR]
        # 5 boundary elements per neighbour pair per loop, one message
        # each: far more messages than the vectorized 6
        assert res.stats.messages == 2 * 3 * 5
        # and every iteration evaluates ownership guards
        assert res.stats.guards > 2 * 95

    def test_rtr_slower_than_inter(self):
        from repro.machine import IPSC860

        seq = run_sequential(parse(FIG1)).arrays["x"].data
        times = {}
        for mode in (Mode.INTER, Mode.RTR):
            cp = compile_program(FIG1, Options(nprocs=4, mode=mode))
            res = cp.run(cost=IPSC860)
            assert np.allclose(res.gathered("x"), seq)
            times[mode] = res.stats.time_us
        assert times[Mode.RTR] > 3 * times[Mode.INTER]

    def test_delayed_comm_hoisted_to_main(self):
        cp, _ = run_modes(FIG1, "x")[Mode.INTER]
        f1 = cp.program.unit("f1")
        # f1 contains no communication: it was exported to the caller
        assert not any(
            isinstance(s, (A.Send, A.Recv, A.Bcast))
            for s in A.walk_stmts(f1.body)
        )
        main = cp.program.main
        assert any(
            isinstance(s, (A.Send, A.Recv))
            for s in A.walk_stmts(main.body)
        )


class TestFig4:
    """Figure 4 -> Figure 10 (INTER) vs Figure 12 (INTRA)."""

    def test_results_all_modes(self):
        run_modes(FIG4, "x", modes=(Mode.INTER, Mode.INTRA))
        run_modes(FIG4, "y", modes=(Mode.INTER, Mode.INTRA))

    def test_inter_single_vectorized_message_per_pair(self):
        _, res = run_modes(FIG4, "x")[Mode.INTER]
        # one [5 x 100] message per neighbour pair — Figure 10
        assert res.stats.messages == 3
        assert res.stats.bytes == 3 * 5 * 100 * 8

    def test_intra_hundred_messages(self):
        _, res = run_modes(FIG4, "x", modes=(Mode.INTRA,))[Mode.INTRA]
        # Figure 12: one [5 x 1] message per i iteration per pair
        assert res.stats.messages == 3 * 100
        assert res.stats.bytes == 3 * 5 * 100 * 8  # same volume

    def test_message_ratio_is_100x(self):
        inter = run_modes(FIG4, "x")[Mode.INTER][1]
        intra = run_modes(FIG4, "x", modes=(Mode.INTRA,))[Mode.INTRA][1]
        assert intra.stats.messages == 100 * inter.stats.messages

    def test_j_loop_bounds_reduced_in_caller(self):
        """Figure 10: the j loop shrinks to the 25 owned columns."""
        cp, res = run_modes(FIG4, "y")[Mode.INTER]
        main = cp.program.main
        loops = [s for s in main.body if isinstance(s, A.Do)]
        from repro.lang.printer import expr_str

        j_loop = loops[1]
        assert "my$p" in expr_str(j_loop.lo)
        # i loop unreduced (row-distributed callee partitions on k)
        i_loop = loops[0]
        assert expr_str(i_loop.lo) == "1" and expr_str(i_loop.hi) == "100"

    def test_clones_named_in_report(self):
        cp, _ = run_modes(FIG4, "x")[Mode.INTER]
        assert cp.report.cloned == {"f1": ["f1$1"], "f2": ["f2$1"]}

    def test_guard_counts_favor_inter(self):
        inter = run_modes(FIG4, "x")[Mode.INTER][1]
        intra = run_modes(FIG4, "x", modes=(Mode.INTRA,))[Mode.INTRA][1]
        assert intra.stats.guards > 10 * max(inter.stats.guards, 1)


class TestFig16DynamicLadder:
    """Figure 15 -> Figure 16 a/b/c/d remap ladder."""

    LEVELS = [DynOpt.NONE, DynOpt.LIVE, DynOpt.HOIST, DynOpt.KILLS]

    @pytest.fixture(scope="class")
    def ladder(self):
        seq = run_sequential(parse(FIG15)).arrays["x"].data
        out = {}
        for dyn in self.LEVELS:
            cp = compile_program(
                FIG15, Options(nprocs=4, mode=Mode.INTER, dynopt=dyn)
            )
            res = cp.run(cost=FREE)
            assert np.allclose(res.gathered("x"), seq), dyn
            out[dyn] = (cp, res)
        return out

    def test_16a_remaps_per_iteration(self, ladder):
        _, res = ladder[DynOpt.NONE]
        # 2 remaps per call x 2 calls x 10 iterations (16a)
        assert res.stats.remaps == 40

    def test_16b_live_halves_remaps(self, ladder):
        _, res = ladder[DynOpt.LIVE]
        # dead restore eliminated + identical cyclic remaps coalesced:
        # 2 per iteration (16b)
        assert res.stats.remaps == 20

    def test_16c_hoisting_leaves_two(self, ladder):
        _, res = ladder[DynOpt.HOIST]
        assert res.stats.remaps == 2

    def test_16d_array_kill_marks_one(self, ladder):
        cp, res = ladder[DynOpt.KILLS]
        assert res.stats.remaps == 1
        assert cp.report.remaps_marked == 1
        assert any(
            isinstance(s, A.MarkDist) for s in A.walk_stmts(cp.program.main.body)
        )

    def test_ladder_monotone_in_time(self, ladder):
        from repro.machine import IPSC860

        seq = run_sequential(parse(FIG15)).arrays["x"].data
        times = []
        for dyn in self.LEVELS:
            cp = compile_program(
                FIG15, Options(nprocs=4, mode=Mode.INTER, dynopt=dyn)
            )
            res = cp.run(cost=IPSC860)
            assert np.allclose(res.gathered("x"), seq)
            times.append(res.stats.time_us)
        assert times[0] > times[1] > times[2] >= times[3]


class TestParameterizedFigures:
    @pytest.mark.parametrize("n,shift", [(64, 1), (128, 7), (96, 3)])
    def test_fig1_scaled(self, n, shift):
        src = fig1_source(n, shift)
        run_modes(src, "x", modes=(Mode.INTER,))

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_fig1_proc_counts(self, P):
        src = fig1_source(96, 4)
        run_modes(src, "x", P=P, modes=(Mode.INTER,))

    def test_fig4_scaled(self):
        run_modes(fig4_source(40, 3), "x", modes=(Mode.INTER,))
        run_modes(fig4_source(40, 3), "y", modes=(Mode.INTER,))
