"""Tests for the CFG builder and the generic dataflow solver."""

from repro.analysis.dataflow import gen_kill_transfer, solve
from repro.ir.cfg import CFG
from repro.lang import ast as A
from repro.lang import parse


def body_of(src):
    return parse(src).main.body


class TestCFGConstruction:
    def test_straight_line(self):
        cfg = CFG.build(body_of("program p\na = 1\nb = 2\nend\n"))
        stmts = list(cfg.stmt_nodes())
        assert len(stmts) == 2
        # entry -> a -> b -> exit
        assert cfg.entry.succs == [stmts[0].id]
        assert stmts[1].succs == [cfg.exit.id]

    def test_if_diamond(self):
        cfg = CFG.build(body_of(
            "program p\nc = 1\nif (c > 0) then\na = 1\nelse\nb = 2\nendif\n"
            "d = 3\nend\n"
        ))
        head = next(n for n in cfg.stmt_nodes()
                    if isinstance(n.stmt, A.If))
        assert len(head.succs) == 2

    def test_if_without_else_falls_through(self):
        cfg = CFG.build(body_of(
            "program p\nc = 1\nif (c > 0) then\na = 1\nendif\nd = 3\nend\n"
        ))
        head = next(n for n in cfg.stmt_nodes() if isinstance(n.stmt, A.If))
        assert len(head.succs) == 2  # then-branch and skip edge

    def test_loop_back_edge(self):
        cfg = CFG.build(body_of(
            "program p\ndo i = 1, 10\na = i\nenddo\nb = 1\nend\n"
        ))
        head = next(n for n in cfg.nodes if n.kind == "loop-head")
        assign = next(n for n in cfg.stmt_nodes()
                      if isinstance(n.stmt, A.Assign)
                      and n.stmt.target.name == "a")
        assert head.id in assign.succs  # back edge
        assert len(head.succs) == 2     # body and exit

    def test_return_reaches_exit(self):
        cfg = CFG.build(body_of(
            "program p\na = 1\nreturn\nb = 2\nend\n"
        ))
        ret = next(n for n in cfg.stmt_nodes() if isinstance(n.stmt, A.Return))
        assert cfg.exit.id in ret.succs

    def test_node_of_identity(self):
        body = body_of("program p\na = 1\na = 2\nend\n")
        cfg = CFG.build(body)
        assert cfg.node_of(body[0]).stmt is body[0]
        assert cfg.node_of(body[1]).stmt is body[1]


class TestDataflowSolver:
    def reaching_defs(self, src):
        """Tiny reaching-definitions instance over scalar assigns."""
        body = body_of(src)
        cfg = CFG.build(body)
        gen, kill = {}, {}
        for n in cfg.stmt_nodes():
            s = n.stmt
            if isinstance(s, A.Assign) and isinstance(s.target, A.Var):
                gen[n.id] = {(s.target.name, id(s))}

        def kill_fn(node, inset):
            s = node.stmt
            if isinstance(s, A.Assign) and isinstance(s.target, A.Var):
                return frozenset(
                    f for f in inset if f[0] == s.target.name
                )
            return frozenset()

        transfer = gen_kill_transfer(gen, kill_fn)
        ins, outs = solve(cfg, transfer, "forward")
        return body, cfg, ins, outs

    def test_straightline_kill(self):
        body, cfg, ins, outs = self.reaching_defs(
            "program p\na = 1\na = 2\nb = a\nend\n"
        )
        at_b = ins[cfg.node_of(body[2]).id]
        a_defs = {f for f in at_b if f[0] == "a"}
        assert a_defs == {("a", id(body[1]))}

    def test_branch_union(self):
        body, cfg, ins, outs = self.reaching_defs(
            "program p\nc = 1\nif (c > 0) then\na = 1\nelse\na = 2\nendif\n"
            "b = a\nend\n"
        )
        at_b = ins[cfg.node_of(body[2]).id]
        a_defs = {f for f in at_b if f[0] == "a"}
        assert len(a_defs) == 2

    def test_loop_defs_reach_own_body(self):
        body, cfg, ins, outs = self.reaching_defs(
            "program p\na = 1\ndo i = 1, 3\nb = a\na = 2\nenddo\nend\n"
        )
        loop = body[1]
        use = loop.body[0]
        at_use = ins[cfg.node_of(use).id]
        a_defs = {f for f in at_use if f[0] == "a"}
        assert len(a_defs) == 2  # initial def and loop-carried redef

    def test_backward_liveness(self):
        body = body_of("program p\na = 1\nb = a\nc = b\nend\n")
        cfg = CFG.build(body)
        # live variables: gen = vars read, kill = var written
        gen = {}
        for n in cfg.stmt_nodes():
            s = n.stmt
            if isinstance(s, A.Assign):
                gen[n.id] = {
                    v.name for v in A.walk_exprs(s.expr)
                    if isinstance(v, A.Var)
                }

        def kill_fn(node, inset):
            s = node.stmt
            if isinstance(s, A.Assign) and isinstance(s.target, A.Var):
                return frozenset(x for x in inset if x == s.target.name)
            return frozenset()

        transfer = gen_kill_transfer(gen, kill_fn)
        ins, outs = solve(cfg, transfer, "backward")
        # before `b = a`, `a` is live; before `a = 1` it is not (the
        # assignment kills it)
        assert "a" in ins[cfg.node_of(body[1]).id]
        assert "a" not in ins[cfg.node_of(body[0]).id]

    def test_boundary_seed(self):
        body = body_of("program p\nb = a\nend\n")
        cfg = CFG.build(body)
        transfer = gen_kill_transfer({}, {})
        ins, outs = solve(
            cfg, transfer, "forward", boundary=frozenset({"seed"})
        )
        assert "seed" in ins[cfg.node_of(body[0]).id]
