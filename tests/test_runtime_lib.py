"""Tests for the run-time library: remap section math, the remap
collective, intrinsics, and shift subsumption (Livermore kernel 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Mode, Options, compile_program
from repro.dist import Distribution
from repro.interp import FArray, run_sequential, run_spmd
from repro.lang import parse
from repro.lang.ast import DistSpec
from repro.machine import FREE, Machine
from repro.runtime.intrinsics import PURE_INTRINSICS
from repro.runtime.remap import remap_array, transfer_sections


def dist(kind, n, P, param=None):
    return Distribution.from_specs([DistSpec(kind, param)], [(1, n)], P)


class TestTransferSections:
    def test_block_to_cyclic_partition(self):
        old, new = dist("block", 16, 4), dist("cyclic", 16, 4)
        # every element lands exactly once across all (src, dst) pairs
        seen = set()
        for src in range(4):
            for dst in range(4):
                for piece in transfer_sections(old, new, src, dst):
                    for g in piece.dims[0].iter():
                        assert g not in seen
                        seen.add(g)
        assert seen == set(range(1, 17))

    def test_identity_transfer_is_diagonal(self):
        old = dist("block", 16, 4)
        for src in range(4):
            for dst in range(4):
                pieces = transfer_sections(old, old, src, dst)
                if src == dst:
                    assert pieces
                else:
                    assert pieces == []

    @given(
        kinds=st.tuples(
            st.sampled_from(["block", "cyclic", "block_cyclic"]),
            st.sampled_from(["block", "cyclic", "block_cyclic"]),
        ),
        n=st.integers(min_value=4, max_value=48),
        P=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_transfer_covers_index_space(self, kinds, n, P):
        old = dist(kinds[0], n, P, param=3)
        new = dist(kinds[1], n, P, param=2)
        count = 0
        for src in range(P):
            for dst in range(P):
                for piece in transfer_sections(old, new, src, dst):
                    count += piece.count
        assert count == n  # disjoint cover


class TestRemapCollective:
    def run_remap(self, old_kind, new_kind, n=16, P=4):
        old = dist(old_kind, n, P, param=4 if old_kind == "block_cyclic" else None)
        new_specs = [DistSpec(new_kind, 2 if new_kind == "block_cyclic" else None)]

        def node(ctx):
            arr = FArray("x", [(1, n)], dist=old)
            # each proc knows only its owned values
            for piece in old.local_index_sets(ctx.rank):
                for g in piece.dims[0].iter():
                    arr.set([g], float(g * 10))
            new = Distribution.from_specs(new_specs, [(1, n)], P)
            remap_array(ctx, arr, new)
            # verify this proc now holds its new owned values
            for piece in new.local_index_sets(ctx.rank):
                for g in piece.dims[0].iter():
                    assert arr.get([g]) == float(g * 10), (ctx.rank, g)
            return True

        m = Machine(P, FREE)
        assert all(m.run(node))
        return m.stats

    @pytest.mark.parametrize("pair", [
        ("block", "cyclic"), ("cyclic", "block"),
        ("block", "block_cyclic"), ("cyclic", "cyclic"),
    ])
    def test_remap_pairs(self, pair):
        old, new = pair
        stats = self.run_remap(old, new)
        if old == new:
            assert stats.remaps == 0  # no-op elided
        else:
            assert stats.remaps == 1

    def test_remap_bytes_counted(self):
        stats = self.run_remap("block", "cyclic")
        # with block->cyclic over P=4, 3/4 of elements move
        assert stats.remap_bytes == 12 * 8


class TestIntrinsics:
    def test_pmod(self):
        pmod = PURE_INTRINSICS["pmod"]
        assert pmod(-1, 4) == 3
        assert pmod(5, 4) == 1
        assert pmod(0, 4) == 0
        assert pmod(-8, 4) == 0

    def test_fortran_mod_truncates(self):
        mod = PURE_INTRINSICS["mod"]
        assert mod(10, 3) == 1
        assert mod(-10, 3) == -1  # Fortran MOD takes the dividend's sign

    def test_sign(self):
        sign = PURE_INTRINSICS["sign"]
        assert sign(5, -1) == -5
        assert sign(-5, 1) == 5

    def test_f_g_deterministic(self):
        f, g = PURE_INTRINSICS["f"], PURE_INTRINSICS["g"]
        assert f(10.0) == f(10.0)
        assert g(10.0) != f(10.0)


class TestShiftSubsumption:
    LK1 = """
program lk1
real x(64), y(64), z(64)
align y(i) with x(i)
align z(i) with x(i)
distribute x(block)
do i = 1, 64
  y(i) = i * 0.25
  z(i) = 65.0 - i
enddo
call hydro(x, y, z, 64)
end

subroutine hydro(x, y, z, n)
real x(n), y(n), z(n)
integer n
do k = 1, n - 11
  x(k) = 3.5 + y(k) * (1.5 * z(k + 10) + 2.5 * z(k + 11))
enddo
end
"""

    def test_livermore_kernel1_single_message(self):
        """z(k+10) and z(k+11) strips subsume into one 11-element
        message per neighbour pair."""
        seq = run_sequential(parse(self.LK1))
        cp = compile_program(self.LK1, Options(nprocs=4, mode=Mode.INTER))
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("x"), seq.arrays["x"].data)
        assert res.stats.messages == 3
        assert res.stats.bytes == 3 * 11 * 8

    def test_opposite_directions_not_subsumed(self):
        src = self.LK1.replace("z(k + 11)", "z(k - 1)").replace(
            "do k = 1, n - 11", "do k = 2, n - 10"
        )
        seq = run_sequential(parse(src))
        cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("x"), seq.arrays["x"].data)
        assert res.stats.messages == 6  # both directions needed
