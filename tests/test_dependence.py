"""Tests for true-dependence analysis driving message vectorization.

The key paper cases:

* Fig. 1  — ``X(i) = F(X(i+5))`` has *no* loop-carried true dependence
  (only an anti-dependence), so communication vectorizes out of the loop.
* dgefa   — the trailing-matrix update writes column ``j > k`` and the
  pivot column ``k`` is read; the true dependence is carried by the
  outer ``k`` loop only, so broadcasts vectorize out of ``j`` but must
  stay inside ``k``.
"""

from repro.analysis.dependence import (
    DimAccess,
    classify_rsd_dim,
    classify_subscript,
    true_dependence,
)
from repro.analysis.rsd import Range, SymDim
from repro.callgraph.acg import LoopInfo
from repro.lang import ast as A


def loop(var, lo=1, hi=100, depth=1, lo_expr=None):
    lo_e = lo_expr if lo_expr is not None else A.Num(lo)
    return LoopInfo(var, lo_e, A.Num(hi), A.ONE,
                    A.Do(var, lo_e, A.Num(hi), A.ONE, []), depth)


class TestClassification:
    def test_subscript_forms(self):
        lv = {"i"}
        assert classify_subscript(A.Num(7), lv) == DimAccess.const(7)
        assert classify_subscript(A.Var("i"), lv) == DimAccess.point("i", 0)
        e = A.BinOp("+", A.Var("i"), A.Num(5))
        assert classify_subscript(e, lv) == DimAccess.point("i", 5)
        assert classify_subscript(A.Var("n"), lv) == DimAccess.sym("n", 0)
        prod = A.BinOp("*", A.Var("i"), A.Num(2))
        assert classify_subscript(prod, lv) == DimAccess.unknown()

    def test_rsd_dims(self):
        lv = {"k"}
        assert classify_rsd_dim(Range(1, 25), lv) == DimAccess.num_range(1, 25)
        assert classify_rsd_dim(Range(5, 5), lv) == DimAccess.const(5)
        sym_pt = SymDim(A.Var("k"))
        assert classify_rsd_dim(sym_pt, lv) == DimAccess.point("k", 0)
        sym_rng = SymDim(A.BinOp("+", A.Var("k"), A.Num(1)), A.Var("n"))
        assert classify_rsd_dim(sym_rng, lv) == DimAccess.sym_range("k", 1)

    def test_rsd_symbolic_numeric_bounds(self):
        got = classify_rsd_dim(SymDim(A.Num(2), A.Num(9)), set())
        assert got == DimAccess.num_range(2, 9)


class TestFig1Shift:
    """X(i) = F(X(i+5)): anti only -> vectorizable."""

    def test_forward_shift_no_true_dep(self):
        i = loop("i", 1, 95)
        dep = true_dependence(
            [DimAccess.point("i", 0)], [DimAccess.point("i", 5)], [i]
        )
        assert dep is None

    def test_backward_shift_carried(self):
        # X(i) = F(X(i-5)): true dep carried by i with distance 5
        i = loop("i", 6, 100)
        dep = true_dependence(
            [DimAccess.point("i", 0)], [DimAccess.point("i", -5)], [i]
        )
        assert dep is not None
        assert dep.carried_levels == {1}
        assert not dep.loop_independent

    def test_same_subscript_loop_independent(self):
        i = loop("i")
        dep = true_dependence(
            [DimAccess.point("i", 0)], [DimAccess.point("i", 0)], [i]
        )
        assert dep is not None
        assert dep.loop_independent
        assert not dep.carried_levels


class TestConstantsAndRanges:
    def test_distinct_constants_independent(self):
        assert true_dependence([DimAccess.const(1)], [DimAccess.const(2)], []) is None

    def test_equal_constants_loop_independent(self):
        dep = true_dependence([DimAccess.const(3)], [DimAccess.const(3)], [])
        assert dep is not None and dep.loop_independent

    def test_disjoint_ranges_independent(self):
        dep = true_dependence(
            [DimAccess.num_range(1, 10)], [DimAccess.num_range(20, 30)], []
        )
        assert dep is None

    def test_overlapping_ranges_dep(self):
        k = loop("k")
        dep = true_dependence(
            [DimAccess.num_range(1, 10)], [DimAccess.num_range(5, 30)], [k]
        )
        assert dep is not None
        assert 1 in dep.carried_levels  # conservative

    def test_const_outside_loop_range_independent(self):
        # write X(i) for i in 1..10; read X(50): no dep
        i = loop("i", 1, 10)
        dep = true_dependence(
            [DimAccess.point("i", 0)], [DimAccess.const(50)], [i]
        )
        assert dep is None

    def test_const_inside_loop_range_dep(self):
        i = loop("i", 1, 10)
        dep = true_dependence(
            [DimAccess.point("i", 0)], [DimAccess.const(5)], [i]
        )
        assert dep is not None


class TestMultiDim:
    def test_any_dim_independent_kills_dep(self):
        i = loop("i")
        dep = true_dependence(
            [DimAccess.point("i", 0), DimAccess.const(1)],
            [DimAccess.point("i", 0), DimAccess.const(2)],
            [i],
        )
        assert dep is None

    def test_conflicting_distances_same_loop(self):
        # X(i, i) vs X(i+1, i+2): requires d==1 and d==2 simultaneously
        i = loop("i")
        dep = true_dependence(
            [DimAccess.point("i", 1), DimAccess.point("i", 2)],
            [DimAccess.point("i", 0), DimAccess.point("i", 0)],
            [i],
        )
        assert dep is None

    def test_2d_shift_fig4(self):
        # Z(k, i) = F(Z(k+5, i)): no true dep on k (forward shift), i equal
        k = loop("k", 1, 95, depth=1)
        dep = true_dependence(
            [DimAccess.point("k", 0), DimAccess.sym("i", 0)],
            [DimAccess.point("k", 5), DimAccess.sym("i", 0)],
            [k],
        )
        assert dep is None


class TestDgefaPattern:
    """The §9 case study's dependence structure at the dgefa level."""

    def make_nest(self):
        k = loop("k", 1, 99, depth=1)
        j = loop("j", 0, 100, depth=2,
                 lo_expr=A.BinOp("+", A.Var("k"), A.Num(1)))  # j = k+1, n
        return k, j

    def test_update_write_vs_pivot_read_carried_at_k_only(self):
        """W: a(k+1:n, j) (daxpy lhs), R: a(k+1:n, k) (pivot column).

        Using j >= k+1, the dependence is carried at the k loop only —
        the broadcast vectorizes out of the j loop.
        """
        k, j = self.make_nest()
        w = [DimAccess.sym_range("k", 1), DimAccess.point("j", 0)]
        r = [DimAccess.sym_range("k", 1), DimAccess.point("k", 0)]
        dep = true_dependence(w, r, [k, j])
        assert dep is not None
        assert dep.carried_levels == {1}
        assert not dep.loop_independent
        assert dep.deepest() == 1

    def test_dscal_write_vs_daxpy_read_loop_independent(self):
        """W: a(k+1:n, k) (dscal), R: a(k+1:n, k) (daxpy) in the same k
        iteration -> loop-independent: communication must follow dscal."""
        k, j = self.make_nest()
        w = [DimAccess.sym_range("k", 1), DimAccess.point("k", 0)]
        r = [DimAccess.sym_range("k", 1), DimAccess.point("k", 0)]
        dep = true_dependence(w, r, [k, j])
        assert dep is not None
        assert dep.loop_independent

    def test_pivot_write_vs_future_column_read_no_dep(self):
        """W: a(k+1:n, k) (dscal at iter k), R: a(k+1:n, j) with j > k:
        the read happens at an earlier-or-same k for larger column —
        no true dependence from the k_w write to reads of columns j > k
        within the same iteration ordering (read of col j at iter k < j
        precedes the dscal write of col j)."""
        k, j = self.make_nest()
        w = [DimAccess.sym_range("k", 1), DimAccess.point("k", 0)]
        r = [DimAccess.sym_range("k", 1), DimAccess.point("j", 0)]
        dep = true_dependence(w, r, [k, j])
        # j_r >= k_r + 1 and element column k_w == j_r => d_k <= -1
        assert dep is None

    def test_without_bound_relation_conservative(self):
        k = loop("k", 1, 99, depth=1)
        j = loop("j", 1, 100, depth=2)  # no provable j > k
        w = [DimAccess.sym_range("k", 1), DimAccess.point("j", 0)]
        r = [DimAccess.sym_range("k", 1), DimAccess.point("k", 0)]
        dep = true_dependence(w, r, [k, j])
        assert dep is not None
        # conservative: may be carried at either level
        assert 1 in dep.carried_levels and 2 in dep.carried_levels


class TestUnknowns:
    def test_unknown_dim_conservative(self):
        i = loop("i")
        dep = true_dependence(
            [DimAccess.unknown()], [DimAccess.point("i", 0)], [i]
        )
        assert dep is not None
        assert dep.carried_levels == {1}
        assert dep.loop_independent

    def test_w_before_r_false_suppresses_loop_independent(self):
        dep = true_dependence(
            [DimAccess.const(3)], [DimAccess.const(3)], [], w_before_r=False
        )
        assert dep is None

    def test_symbolic_same_offset(self):
        dep = true_dependence([DimAccess.sym("n", 0)], [DimAccess.sym("n", 0)], [])
        assert dep is not None and dep.loop_independent

    def test_symbolic_distinct_offsets(self):
        assert true_dependence(
            [DimAccess.sym("n", 0)], [DimAccess.sym("n", 1)], []
        ) is None
