"""Tests for the guard-based computation partition (the paths where
bounds reduction is not applicable and explicit owner tests are
generated — §5.3's "guards are introduced only if local statements have
different iteration sets")."""

import numpy as np
import pytest

from repro.core import Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE


def check(src, arr, P=4, mode=Mode.INTER):
    seq = run_sequential(parse(src)).arrays[arr].data
    cp = compile_program(src, Options(nprocs=P, mode=mode))
    res = cp.run(cost=FREE)
    assert np.allclose(res.gathered(arr), seq)
    return cp, res


class TestStridedLoops:
    def test_red_black_stride2_block(self):
        """Stride-2 loops cannot be bounds-reduced for a block layout;
        guards carry the partition instead."""
        src = (
            "program p\nreal x(64)\ndistribute x(block)\n"
            "do i = 1, 64\nx(i) = i * 1.0\nenddo\n"
            "do i = 2, 63, 2\nx(i) = 0.5 * (x(i - 1) + x(i + 1))\nenddo\n"
            "do i = 3, 62, 2\nx(i) = 0.5 * (x(i - 1) + x(i + 1))\nenddo\n"
            "end\n"
        )
        cp, res = check(src, "x")
        assert res.stats.guards > 0

    def test_stride2_results_with_odd_blocks(self):
        src = (
            "program p\nreal x(30)\ndistribute x(block)\n"
            "do i = 1, 30\nx(i) = i * 1.0\nenddo\n"
            "do i = 1, 29, 2\nx(i) = x(i) * 2\nenddo\nend\n"
        )
        check(src, "x", P=4)  # blocks of 8: stride lands unevenly


class TestMixedIterationSets:
    def test_two_arrays_different_offsets(self):
        """Two lhs with different offsets in one loop: no single bounds
        reduction fits; statement guards keep each correct."""
        src = (
            "program p\nreal x(40), y(40)\nalign y(i) with x(i)\n"
            "distribute x(block)\n"
            "do i = 1, 40\nx(i) = i * 1.0\ny(i) = 0.0\nenddo\n"
            "do i = 1, 39\n"
            "x(i) = x(i) + 1\n"
            "y(i + 1) = x(i)\n"       # offset +1: different owner set
            "enddo\nend\n"
        )
        cp, res = check(src, "y")
        assert res.stats.guards > 0

    def test_replicated_and_partitioned_mixed(self):
        """A replicated scalar update inside a loop with partitioned
        array statements forces guards, not bounds reduction."""
        src = (
            "program p\nreal x(24)\ndistribute x(block)\n"
            "do i = 1, 24\nx(i) = i * 1.0\nenddo\n"
            "c = 0.0\n"
            "do i = 1, 24\n"
            "c = c * 0.5 + 1\n"        # replicated recurrence (no idiom)
            "x(i) = x(i) + 2\n"
            "enddo\nend\n"
        )
        cp, res = check(src, "x")
        loop = cp.program.main.body[-1]
        assert isinstance(loop, A.Do)
        from repro.lang.printer import expr_str

        # loop bounds untouched (all procs iterate)
        assert expr_str(loop.lo) == "1" and expr_str(loop.hi) == "24"
        # scalar result must also be replicated consistently
        seq = run_sequential(parse(src))
        for fr in res.frames:
            assert fr.scalars["c"] == pytest.approx(seq.scalars["c"])

    def test_constant_subscript_guarded(self):
        src = (
            "program p\nreal x(40)\ndistribute x(block)\n"
            "do i = 1, 40\nx(i) = i * 1.0\nenddo\n"
            "x(7) = 99.0\n"
            "x(33) = 77.0\n"
            "end\n"
        )
        cp, res = check(src, "x")
        main = cp.program.main
        guards = [s for s in main.body if isinstance(s, A.If)]
        assert len(guards) >= 2


class TestBlockCyclicGuards:
    def test_block_cyclic_local_update(self):
        """block_cyclic loops always use guards (multi-range local
        sets); identity accesses stay communication-free."""
        src = (
            "program p\nreal x(48)\ndistribute x(block_cyclic(4))\n"
            "do i = 1, 48\nx(i) = i * 2.0\nenddo\nend\n"
        )
        cp, res = check(src, "x")
        assert res.stats.messages == 0
        assert res.stats.guards > 0

    @pytest.mark.parametrize("blocksize", [1, 2, 5, 8])
    def test_block_cyclic_sizes(self, blocksize):
        src = (
            f"program p\nreal x(40)\n"
            f"distribute x(block_cyclic({blocksize}))\n"
            f"do i = 1, 40\nx(i) = i * 3.0\nenddo\nend\n"
        )
        check(src, "x", P=3)


class TestGuardCorrectnessUnderIntra:
    def test_intra_guards_whole_callee(self):
        """INTRA: a callee partitioned on a formal is guarded inside
        (Figure 12's `if ((i.gt.0).AND.(i.lt.25))` shape)."""
        src = (
            "program p\nreal x(32, 32)\ndistribute x(:, block)\n"
            "do j = 1, 32\ncall col(x, j)\nenddo\nend\n"
            "subroutine col(x, j)\nreal x(32, 32)\n"
            "do i = 1, 32\nx(i, j) = i + j * 0.5\nenddo\nend\n"
        )
        cp, res = check(src, "x", mode=Mode.INTRA)
        col = cp.program.unit("col")
        assert any(isinstance(s, A.If) for s in A.walk_stmts(col.body))
        # and INTER removes those guards by reducing the caller's loop
        cp2, res2 = check(src, "x", mode=Mode.INTER)
        assert res2.stats.guards < res.stats.guards
