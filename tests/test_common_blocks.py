"""Tests for COMMON blocks: global arrays shared by name across program
units ("global variables are simply copied" in the paper's Translate,
§5.2; overlaps for COMMON arrays, §5.6)."""

import numpy as np
import pytest

from repro.core import DynOpt, Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE

COMMON_PIPELINE = """
program p
real x(100)
common /data/ x
distribute x(block)
call init
call smooth
end

subroutine init
real x(100)
common /data/ x
do i = 1, 100
  x(i) = i * 1.0
enddo
end

subroutine smooth
real x(100)
common /data/ x
do i = 1, 95
  x(i) = f(x(i + 5))
enddo
end
"""


def check(src, arr="x", P=4, mode=Mode.INTER, dynopt=DynOpt.KILLS):
    seq = run_sequential(parse(src))
    cp = compile_program(src, Options(nprocs=P, mode=mode, dynopt=dynopt))
    res = cp.run(cost=FREE)
    assert np.allclose(res.gathered(arr), seq.arrays[arr].data)
    return cp, res


class TestParsing:
    def test_common_recorded(self):
        prog = parse(COMMON_PIPELINE)
        assert prog.main.commons == ["x"]
        assert prog.unit("smooth").commons == ["x"]

    def test_common_decls_merged(self):
        decls = parse(COMMON_PIPELINE).common_decls()
        assert list(decls) == ["x"]
        assert decls["x"].rank == 1

    def test_shape_mismatch_rejected(self):
        src = (
            "program p\nreal x(10)\ncommon /c/ x\nx(1) = 0\nend\n"
            "subroutine f\nreal x(20)\ncommon /c/ x\nx(1) = 0\nend\n"
        )
        with pytest.raises(ValueError, match="different shapes"):
            parse(src).common_decls()

    def test_blockless_common(self):
        src = "program p\nreal x(10)\ncommon x\nx(1) = 0\nend\n"
        assert parse(src).main.commons == ["x"]


class TestSequentialSemantics:
    def test_shared_storage(self):
        src = (
            "program p\nreal x(10)\ncommon /c/ x\ncall fill\ns = x(3)\nend\n"
            "subroutine fill\nreal x(10)\ncommon /c/ x\n"
            "do i = 1, 10\nx(i) = i * 2.0\nenddo\nend\n"
        )
        fr = run_sequential(parse(src))
        assert fr.scalars["s"] == 6.0

    def test_visible_across_sibling_calls(self):
        src = (
            "program p\nreal x(4)\ncommon /c/ x\ncall a1\ncall a2\n"
            "s = x(1)\nend\n"
            "subroutine a1\nreal x(4)\ncommon /c/ x\nx(1) = 5.0\nend\n"
            "subroutine a2\nreal x(4)\ncommon /c/ x\nx(1) = x(1) + 1\nend\n"
        )
        fr = run_sequential(parse(src))
        assert fr.scalars["s"] == 6.0


class TestCompiledCommon:
    @pytest.mark.parametrize("mode", [Mode.INTER, Mode.INTRA, Mode.RTR])
    def test_all_modes_correct(self, mode):
        check(COMMON_PIPELINE, mode=mode)

    def test_comm_hoisted_to_main(self):
        cp, res = check(COMMON_PIPELINE)
        smooth = cp.program.unit("smooth")
        assert not any(
            isinstance(s, (A.Send, A.Recv)) for s in A.walk_stmts(smooth.body)
        )
        assert res.stats.messages == 3  # one vectorized strip per pair

    def test_comm_placed_after_producing_call(self):
        """init writes the global: the exchange must follow it."""
        cp, _ = check(COMMON_PIPELINE)
        names = []
        for s in cp.program.main.body:
            if isinstance(s, A.Call):
                names.append(s.name)
            elif isinstance(s, A.If) and any(
                isinstance(x, (A.Send, A.Recv)) for x in s.then_body
            ):
                names.append("comm")
        assert names == ["init", "comm", "comm", "smooth"]

    def test_partitioned_loops_in_callees(self):
        cp, _ = check(COMMON_PIPELINE)
        from repro.lang.printer import expr_str

        for unit in ("init", "smooth"):
            loop = [s for s in cp.program.unit(unit).body
                    if isinstance(s, A.Do)][0]
            assert "my$p" in expr_str(loop.lo)

    def test_reaching_through_commons(self):
        from repro.callgraph.acg import ACG
        from repro.core.reaching import compute_reaching
        from repro.dist import Distribution

        result = compute_reaching(ACG(parse(COMMON_PIPELINE)),
                                  Options(nprocs=4))
        smooth = result.per_proc["smooth"]
        dists = {d for d in smooth.reaching_dists("x")
                 if isinstance(d, Distribution)}
        assert {str(d) for d in dists} == {"(block)"}

    def test_cloning_on_common_decomposition(self):
        """Two global arrays with different layouts used through one
        worker procedure force cloning on the COMMON decomposition."""
        src = (
            "program p\nreal u(40), v(40)\ncommon /c/ u, v\n"
            "distribute u(block)\ndistribute v(cyclic)\n"
            "call wu\ncall wv\nend\n"
            "subroutine wu\nreal u(40)\ncommon /c/ u\n"
            "do i = 1, 40\nu(i) = i * 1.0\nenddo\nend\n"
            "subroutine wv\nreal v(40)\ncommon /c/ v\n"
            "do i = 1, 40\nv(i) = i * 2.0\nenddo\nend\n"
        )
        cp, _ = check(src, arr="u")
        _cp, res = check(src, arr="v")
        assert res.stats.messages == 0


class TestDynamicCommon:
    def test_redistribute_global_in_callee(self):
        src = (
            "program p\nreal x(32)\ncommon /c/ x\ndistribute x(block)\n"
            "call fill\ncall cycwork\ncall blkread\nend\n"
            "subroutine fill\nreal x(32)\ncommon /c/ x\n"
            "do i = 1, 32\nx(i) = i * 1.0\nenddo\nend\n"
            "subroutine cycwork\nreal x(32)\ncommon /c/ x\n"
            "distribute x(cyclic)\n"
            "do i = 1, 32\nx(i) = x(i) + 0.5\nenddo\nend\n"
            "subroutine blkread\nreal x(32)\ncommon /c/ x\n"
            "do i = 1, 32\nx(i) = x(i) * 2.0\nenddo\nend\n"
        )
        cp, res = check(src)
        assert res.stats.remaps >= 1  # block->cyclic (+ restore)
        main = cp.program.main
        assert any(isinstance(s, (A.Remap, A.MarkDist))
                   for s in A.walk_stmts(main.body))

    def test_mixed_common_and_argument(self):
        """A global and an argument array interact in one callee."""
        src = (
            "program p\nreal g(48), y(48)\ncommon /c/ g\n"
            "align y(i) with g(i)\ndistribute g(block)\n"
            "do i = 1, 48\ng(i) = i * 1.0\nenddo\n"
            "call mix(y)\nend\n"
            "subroutine mix(y)\nreal g(48), y(48)\ncommon /c/ g\n"
            "do i = 1, 47\ny(i) = g(i + 1)\nenddo\nend\n"
        )
        cp, res = check(src, arr="y")
        assert res.stats.messages == 3
