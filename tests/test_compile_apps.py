"""End-to-end tests for the stencil and ADI applications plus
miscellaneous whole-program compilation behaviours."""

import numpy as np
import pytest

from repro.apps import adi_source, stencil1d_source, stencil2d_source
from repro.core import DynOpt, Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE, IPSC860


def check(src, arr, P=4, mode=Mode.INTER, dynopt=DynOpt.KILLS, cost=FREE):
    seq = run_sequential(parse(src)).arrays[arr].data
    cp = compile_program(src, Options(nprocs=P, mode=mode, dynopt=dynopt))
    res = cp.run(cost=cost)
    assert np.allclose(res.gathered(arr), seq)
    return cp, res


class TestStencil1D:
    def test_correct(self):
        check(stencil1d_source(64, 4), "x")

    def test_messages_per_step(self):
        _cp, res = check(stencil1d_source(64, 4), "x")
        # per step: left shift + right shift, one message per neighbour
        # pair each = 6 messages per step
        assert res.stats.messages == 4 * 6

    def test_comm_in_caller_not_callee(self):
        cp, _ = check(stencil1d_source(64, 4), "x")
        smooth = cp.program.unit("smooth")
        assert not any(
            isinstance(s, (A.Send, A.Recv)) for s in A.walk_stmts(smooth.body)
        )
        main = cp.program.main
        assert any(
            isinstance(s, (A.Send, A.Recv)) for s in A.walk_stmts(main.body)
        )

    def test_comm_inside_time_loop(self):
        """The t loop carries a true dependence (x rewritten each step):
        shifts cannot hoist above it."""
        cp, _ = check(stencil1d_source(64, 4), "x")
        t_loop = [s for s in cp.program.main.body if isinstance(s, A.Do)][0]
        sends = [
            s for s in A.walk_stmts(t_loop.body)
            if isinstance(s, (A.Send, A.Recv))
        ]
        assert sends, "shift communication must stay inside the time loop"

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_proc_scaling(self, P):
        check(stencil1d_source(64, 2), "x", P=P)


class TestStencil2D:
    def test_correct(self):
        check(stencil2d_source(24, 2), "a")

    def test_row_messages_vectorized(self):
        _cp, res = check(stencil2d_source(24, 2), "a")
        # north + south ghost rows per step: 2 patterns x 3 pairs x 2 steps
        assert res.stats.messages == 2 * 3 * 2
        # each message carries a whole boundary row strip (22 columns)
        assert res.stats.bytes == 12 * 22 * 8

    def test_intra_no_better_than_inter(self):
        """Here all loops live inside the sweep procedures, so immediate
        instantiation happens to coincide with the delayed placement;
        INTRA can never beat INTER."""
        _cp, inter = check(stencil2d_source(24, 2), "a")
        _cp2, intra = check(stencil2d_source(24, 2), "a", mode=Mode.INTRA)
        assert intra.stats.messages >= inter.stats.messages


class TestADI:
    def test_correct_all_levels(self):
        for dyn in (DynOpt.NONE, DynOpt.LIVE, DynOpt.HOIST, DynOpt.KILLS):
            check(adi_source(16, 2), "a", dynopt=dyn)

    def test_two_transposes_per_step(self):
        _cp, res = check(adi_source(16, 3), "a", dynopt=DynOpt.KILLS)
        # one row->col and one col->row remap per step; the first
        # row-distribution request matches the initial layout (no-op)
        assert res.stats.remaps == 2 * 3 - 1

    def test_remap_moves_data(self):
        _cp, res = check(adi_source(16, 2), "a")
        n = 16
        # each executed transpose moves (P-1)/P of the matrix
        per_remap = n * n * 8 * 3 // 4
        assert res.stats.remap_bytes == res.stats.remaps * per_remap

    def test_sweeps_partitioned(self):
        cp, _ = check(adi_source(16, 2), "a")
        for unit in ("rowsweep", "colsweep"):
            proc = cp.program.unit(unit)
            outer = [s for s in proc.body if isinstance(s, A.Do)][0]
            from repro.lang.printer import expr_str

            assert "my$p" in expr_str(outer.lo)

    def test_unoptimized_remaps_more(self):
        _a, none = check(adi_source(16, 3), "a", dynopt=DynOpt.NONE)
        _b, opt = check(adi_source(16, 3), "a", dynopt=DynOpt.KILLS)
        assert none.stats.remaps > opt.stats.remaps


class TestWholeProgramBehaviours:
    def test_single_processor_degenerates(self):
        src = stencil1d_source(32, 2)
        cp, res = check(src, "x", P=1)
        assert res.stats.messages == 0

    def test_replicated_array_untouched(self):
        src = (
            "program p\nreal x(32), w(8)\ndistribute x(block)\n"
            "do i = 1, 8\nw(i) = i * 2.0\nenddo\n"
            "do i = 1, 32\nx(i) = x(i) + w(1)\nenddo\nend\n"
        )
        cp, res = check(src, "x")
        assert res.stats.messages == 0  # w replicated, x access local

    def test_scalar_reduction_statement_is_replicated(self):
        src = (
            "program p\nreal x(16)\ns = 0\n"
            "do i = 1, 16\nx(i) = i * 1.0\nenddo\n"
            "do i = 1, 16\ns = s + x(i)\nenddo\nend\n"
        )
        # x never distributed: everything replicated, zero messages
        cp = compile_program(src, Options(nprocs=4))
        res = cp.run(cost=FREE)
        assert all(fr.scalars["s"] == sum(range(1, 17))
                   for fr in res.frames)

    def test_cyclic_shift_strided_messages(self):
        src = (
            "program p\nreal x(32)\ndistribute x(cyclic)\n"
            "do i = 1, 31\nx(i) = f(x(i + 1))\nenddo\nend\n"
        )
        cp, res = check(src, "x")
        # cyclic shift: every processor exchanges its strided set once
        assert res.stats.messages == 4
        assert res.stats.bytes == 32 * 8

    def test_block_cyclic_falls_back_gracefully(self):
        src = (
            "program p\nreal x(32)\ndistribute x(block_cyclic(4))\n"
            "do i = 1, 31\nx(i) = f(x(i + 1))\nenddo\nend\n"
        )
        cp, res = check(src, "x")
        assert res.stats.messages > 0  # run-time resolution still correct

    def test_backward_shift_no_dep(self):
        """A negative shift into a different array has no true
        dependence: one vectorized message per neighbour pair, flowing
        the other way."""
        src = (
            "program p\nreal x(64), y(64)\nalign y(i) with x(i)\n"
            "distribute x(block)\ncall g1(x, y)\nend\n"
            "subroutine g1(x, y)\nreal x(64), y(64)\n"
            "do i = 9, 64\ny(i) = f(x(i - 8))\nenddo\nend\n"
        )
        cp, res = check(src, "y")
        assert res.stats.messages == 3  # one per neighbour pair
        assert not cp.report.rtr_fallbacks

    def test_backward_shift_with_carried_dep_pipelines(self):
        """x(i) = f(x(i-8)) carries a true dependence (distance 8): the
        vectorized prefetch would be illegal; the compiler pipelines at
        block granularity — one boundary message per neighbour pair,
        executed as a wavefront."""
        src = (
            "program p\nreal x(64)\ndistribute x(block)\n"
            "call g1(x)\nend\n"
            "subroutine g1(x)\nreal x(64)\n"
            "do i = 9, 64\nx(i) = f(x(i - 8))\nenddo\nend\n"
        )
        cp, res = check(src, "x")
        assert res.stats.messages == 3
        assert not cp.report.rtr_fallbacks
        assert any("pipeline" in line
                   for line in cp.report.comm_placements)

    def test_carried_dependence_direct_in_main(self):
        """x(i) = f(x(i-1)) directly in the main program: pipelined at
        block granularity, still correct."""
        src = (
            "program p\nreal x(16)\ndistribute x(block)\n"
            "do i = 2, 16\nx(i) = f(x(i - 1))\nenddo\nend\n"
        )
        cp, res = check(src, "x")
        assert res.stats.messages == 3  # wavefront boundary messages

    def test_report_distributions(self):
        cp, _ = check(stencil2d_source(24, 2), "a")
        assert cp.report.distributions["sweep"]["a"] == "(block, :)"
        assert cp.report.distributions["sweep"]["b"] == "(block, :)"


class TestWave:
    def test_correct(self):
        from repro.apps import wave_source

        check(wave_source(64, 4), "u")

    def test_two_exchanges_per_step(self):
        from repro.apps import wave_source

        _cp, res = check(wave_source(64, 4), "u")
        # left + right strips, one message per neighbour pair per step
        assert res.stats.messages == 4 * 2 * 3

    @pytest.mark.parametrize("P", [2, 3, 4])
    def test_proc_counts(self, P):
        from repro.apps import wave_source

        check(wave_source(48, 3), "u", P=P)


class TestConjugateGradient:
    """CG on a 1-D Laplacian: shifts + reductions + scalar control."""

    def test_correct_solution_vector(self):
        from repro.apps import cg_source

        check(cg_source(64, 8), "x")

    def test_residual_replicated_consistently(self):
        from repro.apps import cg_source

        src = cg_source(48, 6)
        seq = run_sequential(parse(src))
        cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
        res = cp.run(cost=FREE)
        vals = [fr.scalars["resid"] for fr in res.frames]
        assert len(set(vals)) == 1  # bitwise identical on every node
        assert vals[0] == pytest.approx(seq.scalars["resid"])

    def test_no_rtr_fallbacks(self):
        from repro.apps import cg_source

        cp, _ = check(cg_source(64, 4), "x")
        assert not cp.report.rtr_fallbacks

    def test_reductions_counted(self):
        from repro.apps import cg_source

        _cp, res = check(cg_source(64, 4), "x")
        # rsold once + (pap + rsnew) per iteration, plus the boundary
        # element broadcasts of the matvec
        assert res.stats.collectives >= 1 + 2 * 4

    @pytest.mark.parametrize("P", [2, 3, 4])
    def test_proc_counts(self, P):
        from repro.apps import cg_source

        check(cg_source(48, 4), "x", P=P)

    def test_convergence_progresses(self):
        """More iterations -> smaller residual (the solver solves)."""
        from repro.apps import cg_source

        resids = []
        for iters in (2, 8, 20):
            src = cg_source(32, iters, eps=0.5)
            cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
            res = cp.run(cost=FREE)
            resids.append(res.frames[0].scalars["resid"])
        assert resids[0] > resids[1] > resids[2]
