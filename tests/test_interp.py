"""Tests for the Fortran/SPMD interpreter."""

import numpy as np
import pytest

from repro.dist import Distribution
from repro.interp import (
    FArray,
    InterpError,
    Interpreter,
    run_sequential,
    run_spmd,
)
from repro.lang import ast as A
from repro.lang import parse
from repro.lang.ast import DistSpec
from repro.machine import FREE
from repro.runtime.intrinsics import f_func


def run(src):
    return run_sequential(parse(src))


class TestFArray:
    def test_element_access(self):
        a = FArray("x", [(1, 10)])
        a.set([3], 7.5)
        assert a.get([3]) == 7.5

    def test_nonunit_lower_bound(self):
        a = FArray("x", [(0, 9), (5, 8)])
        a.set([0, 5], 1.0)
        assert a.data[0, 0] == 1.0

    def test_out_of_bounds_raises(self):
        a = FArray("x", [(1, 10)])
        with pytest.raises(IndexError, match="outside"):
            a.get([11])
        with pytest.raises(IndexError):
            a.set([0], 1.0)

    def test_section_read_write(self):
        a = FArray("x", [(1, 10)])
        a.write_section([(2, 5, 1)], np.array([1.0, 2.0, 3.0, 4.0]))
        got = a.read_section([(2, 5, 1)])
        assert got.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_strided_section(self):
        a = FArray("x", [(1, 10)])
        a.write_section([(1, 9, 2)], np.array([9.0] * 5))
        assert a.data[::2].tolist() == [9.0] * 5
        assert a.data[1::2].tolist() == [0.0] * 5

    def test_2d_mixed_section(self):
        a = FArray("x", [(1, 4), (1, 4)])
        a.write_section([(1, 4, 1), 2], np.arange(4.0))
        assert a.data[:, 1].tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_section_count_and_bytes(self):
        a = FArray("x", [(1, 10), (1, 10)])
        subs = [(2, 6, 2), 3]
        assert a.section_count(subs) == 3
        assert a.section_bytes(subs) == 24

    def test_integer_dtype(self):
        a = FArray("k", [(1, 5)], dtype="integer")
        a.set([1], 2.9)
        assert a.get([1]) == 2  # integral storage truncates


class TestSequentialBasics:
    def test_scalar_assign_and_arith(self):
        fr = run("program p\nx = 2.5 * 4\nend\n")
        assert fr.scalars["x"] == 10.0

    def test_implicit_integer_typing(self):
        fr = run("program p\ni = 7 / 2\nx = 7 / 2.0\nend\n")
        assert fr.scalars["i"] == 3
        assert fr.scalars["x"] == 3.5

    def test_do_loop_sum(self):
        fr = run("program p\ns = 0\ndo i = 1, 10\ns = s + i\nenddo\nend\n")
        assert fr.scalars["s"] == 55.0

    def test_do_loop_step_and_final_value(self):
        fr = run("program p\ndo i = 1, 10, 3\nenddo\nend\n")
        assert fr.scalars["i"] == 13  # Fortran leaves var past the bound

    def test_do_zero_trip(self):
        fr = run("program p\ns = 5\ndo i = 10, 1\ns = 0\nenddo\nend\n")
        assert fr.scalars["s"] == 5.0

    def test_if_else(self):
        fr = run(
            "program p\ni = 3\nif (i > 2) then\nx = 1\nelse\nx = 2\nendif\nend\n"
        )
        assert fr.scalars["x"] == 1.0

    def test_do_while(self):
        fr = run("program p\ni = 0\ndo while (i < 5)\ni = i + 1\nenddo\nend\n")
        assert fr.scalars["i"] == 5

    def test_array_roundtrip(self):
        fr = run(
            "program p\nreal x(10)\ndo i = 1, 10\nx(i) = i * 2\nenddo\n"
            "s = x(7)\nend\n"
        )
        assert fr.scalars["s"] == 14.0

    def test_intrinsics(self):
        fr = run("program p\na = min(3, 8)\nb = max(3, 8)\nc = mod(10, 3)\n"
                 "d = abs(-2.5)\ne = sqrt(16.0)\nend\n")
        s = fr.scalars
        assert (s["a"], s["b"], s["c"], s["d"], s["e"]) == (3, 8, 1, 2.5, 4.0)

    def test_f_intrinsic_matches_runtime(self):
        fr = run("program p\nx = f(10.0)\nend\n")
        assert fr.scalars["x"] == f_func(10.0)

    def test_parameter_constant(self):
        fr = run("program p\nparameter (n = 25)\ni = n * 4\nend\n")
        assert fr.scalars["i"] == 100

    def test_print_collected(self):
        prog = parse("program p\nprint *, 'v =', 42\nend\n")
        interp = Interpreter(prog)
        interp.run()
        assert interp.prints == ["[0] v = 42"]

    def test_undefined_scalar_read_raises(self):
        with pytest.raises(Exception, match="undefined scalar"):
            run("program p\nx = y + 1\nend\n")

    def test_stop_terminates(self):
        fr = run("program p\nx = 1\nstop\nx = 2\nend\n")
        assert fr.scalars["x"] == 1.0


class TestProceduresAndFunctions:
    def test_subroutine_array_by_reference(self):
        fr = run(
            "program p\nreal x(5)\ncall fill(x)\ns = x(3)\nend\n"
            "subroutine fill(a)\nreal a(5)\ndo i = 1, 5\na(i) = i\nenddo\nend\n"
        )
        assert fr.scalars["s"] == 3.0

    def test_scalar_copy_out(self):
        fr = run(
            "program p\nn = 1\ncall bump(n)\nend\n"
            "subroutine bump(m)\ninteger m\nm = m + 10\nend\n"
        )
        assert fr.scalars["n"] == 11

    def test_expression_actual_no_copy_out(self):
        fr = run(
            "program p\nn = 1\ncall bump(n + 0)\nend\n"
            "subroutine bump(m)\ninteger m\nm = m + 10\nend\n"
        )
        assert fr.scalars["n"] == 1

    def test_function_result(self):
        fr = run(
            "program p\nx = twice(21.0)\nend\n"
            "real function twice(v)\nreal v\ntwice = v * 2\nend\n"
        )
        assert fr.scalars["x"] == 42.0

    def test_integer_function(self):
        fr = run(
            "program p\nreal x(10)\ndo i = 1, 10\nx(i) = 11 - i\nenddo\n"
            "k = imax(x, 10)\nend\n"
            "integer function imax(dx, n)\nreal dx(n)\ninteger n\n"
            "imax = 1\ndo i = 2, n\nif (dx(i) > dx(imax)) imax = i\nenddo\nend\n"
        )
        assert fr.scalars["k"] == 1

    def test_symbolic_formal_array_bounds(self):
        fr = run(
            "program p\nreal x(6, 6)\nx(2, 3) = 5\ncall probe(x, 6)\nend\n"
            "subroutine probe(a, n)\nreal a(n, n)\ninteger n\ns = a(2, 3)\nend\n"
        )
        # no error: bounds a(n, n) resolved from the actual n

    def test_nested_calls(self):
        fr = run(
            "program p\nreal x(4)\ncall outer(x)\ns = x(1)\nend\n"
            "subroutine outer(a)\nreal a(4)\ncall inner(a)\na(1) = a(1) + 1\nend\n"
            "subroutine inner(b)\nreal b(4)\nb(1) = 40\nend\n"
        )
        assert fr.scalars["s"] == 41.0

    def test_return_statement(self):
        fr = run(
            "program p\nn = 0\ncall early(n)\nend\n"
            "subroutine early(m)\ninteger m\nm = 1\nreturn\nm = 2\nend\n"
        )
        assert fr.scalars["n"] == 1


class TestDirectivesAreNoOps:
    def test_sequential_ignores_placement(self):
        fr = run(
            "program p\nreal x(8)\ndistribute x(block)\n"
            "do i = 1, 8\nx(i) = i\nenddo\nend\n"
        )
        assert fr.arrays["x"].data.tolist() == [1, 2, 3, 4, 5, 6, 7, 8]


class TestSPMDExecution:
    def make_shift_program(self):
        """Compiler-output-shaped program: block-distributed shift."""
        prog = parse(
            "program p1\nreal x(100)\ninteger my$p, lb$1, ub$1\n"
            "my$p = myproc()\n"
            "lb$1 = my$p * 25 + 1\n"
            "ub$1 = min((my$p + 1) * 25, 95)\n"
            "do i = lb$1, ub$1\nx(i) = f(x(i + 5))\nenddo\nend\n"
        )
        main = prog.main
        send = A.If(
            A.BinOp(">", A.var("my$p"), A.Num(0)),
            [A.Send("x", [A.Triplet(A.var("lb$1"),
                                    A.BinOp("+", A.var("lb$1"), A.Num(4)),
                                    None)],
                    A.BinOp("-", A.var("my$p"), A.Num(1)), tag=1)],
            [],
        )
        recv = A.If(
            A.BinOp("<", A.var("my$p"), A.Num(3)),
            [A.Recv("x", [A.Triplet(A.BinOp("+", A.var("ub$1"), A.Num(1)),
                                    A.BinOp("+", A.var("ub$1"), A.Num(5)),
                                    None)],
                    A.BinOp("+", A.var("my$p"), A.Num(1)), tag=1)],
            [],
        )
        main.body.insert(3, send)
        main.body.insert(4, recv)
        return prog

    def seq_reference(self):
        return run_sequential(parse(
            "program p1\nreal x(100)\ndo i = 1, 95\nx(i) = f(x(i + 5))\n"
            "enddo\nend\n"
        )).arrays["x"].data

    def test_shift_program_matches_sequential(self):
        dist = Distribution.from_specs([DistSpec("block")], [(1, 100)], 4)
        res = run_spmd(self.make_shift_program(), 4, FREE,
                       initial_dists={("p1", "x"): dist})
        assert np.allclose(res.gathered("x"), self.seq_reference())

    def test_shift_message_stats(self):
        dist = Distribution.from_specs([DistSpec("block")], [(1, 100)], 4)
        res = run_spmd(self.make_shift_program(), 4, FREE,
                       initial_dists={("p1", "x"): dist})
        assert res.stats.messages == 3          # one per neighbor pair
        assert res.stats.bytes == 3 * 5 * 8     # 5 doubles each

    def test_myproc_intrinsic(self):
        prog = parse("program p\ni = myproc()\nend\n")
        res = run_spmd(prog, 3, FREE)
        assert [fr.scalars["i"] for fr in res.frames] == [0, 1, 2]

    def test_owner_intrinsic_tracks_distribution(self):
        prog = parse("program p\nreal x(100)\nk = owner(x(26))\nend\n")
        dist = Distribution.from_specs([DistSpec("block")], [(1, 100)], 4)
        res = run_spmd(prog, 4, FREE, initial_dists={("p", "x"): dist})
        assert all(fr.scalars["k"] == 1 for fr in res.frames)

    def test_gathered_respects_ownership(self):
        """Each rank writes only its owned region; gathering assembles the
        correct global array even though non-owned regions are stale."""
        prog = parse(
            "program p\nreal x(8)\ninteger my$p\nmy$p = myproc()\n"
            "do i = my$p * 2 + 1, my$p * 2 + 2\nx(i) = my$p + 1\nenddo\nend\n"
        )
        dist = Distribution.from_specs([DistSpec("block")], [(1, 8)], 4)
        res = run_spmd(prog, 4, FREE, initial_dists={("p", "x"): dist})
        assert res.gathered("x").tolist() == [1, 1, 2, 2, 3, 3, 4, 4]


class TestRemapExecution:
    def test_physical_remap_preserves_values(self):
        prog = parse(
            "program p\nreal x(16)\ninteger my$p\nmy$p = myproc()\n"
            "do i = my$p * 4 + 1, my$p * 4 + 4\nx(i) = i * 1.0\nenddo\nend\n"
        )
        # append a Remap to cyclic, then have every proc rescale its
        # cyclic-owned elements
        main = prog.main
        main.body.append(A.Remap("x", [DistSpec("cyclic")]))
        main.body.append(
            A.Do("i", A.BinOp("+", A.var("my$p"), A.Num(1)), A.Num(16),
                 A.Num(4),
                 [A.Assign(A.ArrayRef("x", (A.var("i"),)),
                           A.BinOp("*", A.ArrayRef("x", (A.var("i"),)),
                                   A.Num(10)))])
        )
        dist = Distribution.from_specs([DistSpec("block")], [(1, 16)], 4)
        res = run_spmd(prog, 4, FREE, initial_dists={("p", "x"): dist})
        assert res.gathered("x").tolist() == [i * 10.0 for i in range(1, 17)]
        assert res.stats.remaps == 1
        assert res.stats.remap_bytes > 0

    def test_noop_remap_costs_nothing(self):
        prog = parse("program p\nreal x(16)\nend\n")
        prog.main.body.append(A.Remap("x", [DistSpec("block")]))
        dist = Distribution.from_specs([DistSpec("block")], [(1, 16)], 4)
        res = run_spmd(prog, 4, FREE, initial_dists={("p", "x"): dist})
        assert res.stats.remaps == 0

    def test_mark_dist_changes_owner_without_motion(self):
        prog = parse("program p\nreal x(8)\nk = owner(x(2))\nend\n")
        prog.main.body.insert(0, A.MarkDist("x", [DistSpec("cyclic")]))
        dist = Distribution.from_specs([DistSpec("block")], [(1, 8)], 4)
        res = run_spmd(prog, 4, FREE, initial_dists={("p", "x"): dist})
        assert all(fr.scalars["k"] == 1 for fr in res.frames)  # cyclic owner
        assert res.stats.remaps == 0
        assert res.stats.messages == 0


class TestBroadcastStmt:
    def test_bcast_section(self):
        prog = parse(
            "program p\nreal x(10)\ninteger my$p\nmy$p = myproc()\n"
            "if (my$p == 1) then\ndo i = 1, 10\nx(i) = i * 3.0\nenddo\nendif\n"
            "end\n"
        )
        prog.main.body.append(
            A.Bcast("x", [A.Triplet(A.Num(1), A.Num(10), None)], A.Num(1),
                    tag=9)
        )
        res = run_spmd(prog, 4, FREE,
                       initial_dists={("p", "x"):
                                      Distribution.replicated([(1, 10)], 4)})
        for fr in res.frames:
            assert fr.arrays["x"].data.tolist() == [i * 3.0 for i in range(1, 11)]
        assert res.stats.collectives == 1
