"""Unit tests for the dynamic-data-decomposition machinery (§6):
DecompBefore/After/Use/Kill sets, liveness/coalescing over the event
model, hoisting legality, and array-kill detection."""

import numpy as np
import pytest

from repro.core import DynOpt, Mode, Options, compile_program
from repro.core.dynamic import (
    _first_access_is_full_kill,
    find_dynamic_distributes,
)
from repro.dist import Distribution
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE


def check(src, arr="x", dynopt=DynOpt.KILLS, P=4):
    seq = run_sequential(parse(src)).arrays[arr].data
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER,
                                      dynopt=dynopt))
    res = cp.run(cost=FREE)
    assert np.allclose(res.gathered(arr), seq)
    return cp, res


class TestFindDynamicDistributes:
    def test_prologue_is_static(self):
        prog = parse(
            "program p\nreal x(10)\ndistribute x(block)\nx(1) = 0\nend\n"
        )
        assert find_dynamic_distributes(prog.main, is_main=True) == []

    def test_post_prologue_is_dynamic(self):
        prog = parse(
            "program p\nreal x(10)\ndistribute x(block)\nx(1) = 0\n"
            "distribute x(cyclic)\nend\n"
        )
        dyn = find_dynamic_distributes(prog.main, is_main=True)
        assert len(dyn) == 1
        assert dyn[0].specs == [A.DistSpec("cyclic")]

    def test_subprogram_distributes_always_dynamic(self):
        prog = parse(
            "subroutine f(x)\nreal x(10)\ndistribute x(cyclic)\n"
            "x(1) = 0\nend\n"
        )
        dyn = find_dynamic_distributes(prog.units[0], is_main=False)
        assert len(dyn) == 1


class TestDecompSets:
    def make(self, src, proc="f1"):
        cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
        return cp

    def test_fig15_sets(self):
        """DecompKill(F1) = {X}, DecompBefore = cyclic, DecompAfter =
        restore; DecompUse(F2) = {X} (the §6.1 example)."""
        src = (
            "program p\nreal x(100)\ndistribute x(block)\n"
            "call f1(x)\ncall f2(x)\nend\n"
            "subroutine f1(x)\nreal x(100)\ndistribute x(cyclic)\n"
            "do i = 1, 100\nx(i) = f(x(i))\nenddo\nend\n"
            "subroutine f2(x)\nreal x(100)\ns = x(1)\nend\n"
        )
        from repro.callgraph.acg import ACG
        from repro.core.cloning import clone_program
        from repro.core.driver import ProcedureCompiler, TagAllocator
        from repro.core.options import CompileReport

        opts = Options(nprocs=4, mode=Mode.INTER)
        outcome = clone_program(parse(src), opts)
        report = CompileReport()
        tags = TagAllocator()
        exports = {}
        for name in outcome.acg.reverse_topological_order():
            pc = ProcedureCompiler(
                outcome.program.unit(name), outcome.acg, outcome.reaching,
                opts, exports, report, tags, is_main=(name == "p"),
            )
            exports[name] = pc.compile()
        f1 = exports["f1"].decomp
        assert f1.kill == {"x"}
        assert str(f1.before["x"]) == "(cyclic)"
        assert f1.after["x"] is None  # restore inherited
        f2 = exports["f2"].decomp
        assert "x" in f2.use
        assert f2.kill == set()

    def test_callee_remap_not_delayable_when_used_first(self):
        """A procedure that reads the inherited layout before
        redistributing must remap in place."""
        src = (
            "program p\nreal x(32)\ndistribute x(block)\ncall f1(x)\nend\n"
            "subroutine f1(x)\nreal x(32)\n"
            "s = x(1)\n"                      # uses inherited first
            "distribute x(cyclic)\n"
            "do i = 1, 32\nx(i) = f(x(i))\nenddo\nend\n"
        )
        cp, res = check(src)
        f1 = cp.program.unit("f1")
        assert any(isinstance(s, A.Remap) for s in A.walk_stmts(f1.body))
        assert res.stats.remaps >= 1


class TestArrayKillDetection:
    def probe(self, body, decls="real x(10)"):
        src = f"subroutine f(x)\n{decls}\n{body}\nend\n"
        proc = parse(src).units[0]
        return _first_access_is_full_kill(proc, "x", {})

    def test_full_overwrite_detected(self):
        assert self.probe("do i = 1, 10\nx(i) = i\nenddo")

    def test_partial_overwrite_rejected(self):
        assert not self.probe("do i = 1, 5\nx(i) = i\nenddo")

    def test_read_before_write_rejected(self):
        assert not self.probe("s = x(1)\ndo i = 1, 10\nx(i) = i\nenddo")

    def test_self_referencing_write_rejected(self):
        assert not self.probe("do i = 1, 10\nx(i) = x(i) + 1\nenddo")

    def test_strided_overwrite_rejected(self):
        assert not self.probe("do i = 1, 10, 2\nx(i) = i\nenddo")

    def test_2d_full_overwrite(self):
        assert self.probe(
            "do j = 1, 4\ndo i = 1, 4\nx(i, j) = i\nenddo\nenddo",
            decls="real x(4, 4)",
        )

    def test_2d_wrong_bounds_rejected(self):
        assert not self.probe(
            "do j = 1, 3\ndo i = 1, 4\nx(i, j) = i\nenddo\nenddo",
            decls="real x(4, 4)",
        )


class TestMainLocalRedistribution:
    def test_midstream_redistribute_compiles_to_remap(self):
        src = (
            "program p\nreal x(32)\ndistribute x(block)\n"
            "call phase1(x)\n"
            "distribute x(cyclic)\n"
            "call phase2(x)\nend\n"
            "subroutine phase1(x)\nreal x(32)\n"
            "do i = 1, 32\nx(i) = i * 1.0\nenddo\nend\n"
            "subroutine phase2(x)\nreal x(32)\n"
            "do i = 1, 32\nx(i) = x(i) + 1\nenddo\nend\n"
        )
        cp, res = check(src)
        main = cp.program.main
        remaps = [s for s in A.walk_stmts(main.body)
                  if isinstance(s, (A.Remap, A.MarkDist))]
        assert len(remaps) == 1

    def test_redistribute_of_dead_array_marks(self):
        """phase2 fully overwrites x: the remap becomes a MarkDist."""
        src = (
            "program p\nreal x(32)\ndistribute x(block)\n"
            "call phase1(x)\n"
            "distribute x(cyclic)\n"
            "call killer(x)\nend\n"
            "subroutine phase1(x)\nreal x(32)\n"
            "do i = 1, 32\nx(i) = i * 1.0\nenddo\nend\n"
            "subroutine killer(x)\nreal x(32)\n"
            "do i = 1, 32\nx(i) = i * 3.0\nenddo\nend\n"
        )
        cp, res = check(src)
        main = cp.program.main
        assert any(isinstance(s, A.MarkDist)
                   for s in A.walk_stmts(main.body))
        assert res.stats.remaps == 0  # nothing physically moved


class TestOptimizationLevels:
    SRC = (
        "program p\nreal x(64)\nparameter (t = 6)\ndistribute x(block)\n"
        "do k = 1, t\n"
        "call cycphase(x)\n"
        "call blkphase(x)\n"
        "enddo\nend\n"
        "subroutine cycphase(x)\nreal x(64)\ndistribute x(cyclic)\n"
        "do i = 1, 64\nx(i) = f(x(i))\nenddo\nend\n"
        "subroutine blkphase(x)\nreal x(64)\n"
        "do i = 1, 64\nx(i) = x(i) + 1.0\nenddo\nend\n"
    )

    def test_levels_correct_and_monotone(self):
        remaps = []
        for dyn in (DynOpt.NONE, DynOpt.LIVE, DynOpt.HOIST, DynOpt.KILLS):
            _cp, res = check(self.SRC, dynopt=dyn)
            remaps.append(res.stats.remaps)
        assert remaps[0] >= remaps[1] >= remaps[2] >= remaps[3]
        # with a block-using phase inside the loop, both remaps stay per
        # iteration under LIVE: 2 per iteration
        assert remaps[1] == 2 * 6

    def test_none_places_full_pattern(self):
        _cp, res = check(self.SRC, dynopt=DynOpt.NONE)
        # before+after around the redistributing call, per iteration;
        # one no-op elided by the runtime on the first entry
        assert res.stats.remaps >= 2 * 6
