"""Chaos suite for the compile service.

Under every induced failure — worker SIGKILL mid-compile, worker hang,
truncated/corrupt summary-store entries, a flooded request queue,
malformed client frames, a daemon dying mid-request — each compile
request must either complete **byte-identical to a cold in-process
compile** or return a structured retryable error.  No hangs (all reads
are deadline-bounded), no partial caches (atomic store writes), no
silent wrong answers.
"""

import os
import socket
import threading
import time

import pytest

from repro.core import Options, compile_program
from repro.machine import FREE
from repro.service import (
    CompileClient,
    CompileDaemon,
    ServiceCompiler,
    ServiceError,
    SummaryStore,
    WorkerPool,
    compile_with_fallback,
)
from repro.service.protocol import recv_frame, send_frame

from .test_service import BASE, EDIT_LEAF, sock_path


@pytest.fixture
def no_memo(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")


# ---------------------------------------------------------------------------
# worker crash / hang supervision
# ---------------------------------------------------------------------------


class TestWorkerCrash:
    def test_sigkill_mid_compile_recovers(self, tmp_path, no_memo):
        """The crash flag makes exactly one worker SIGKILL itself on
        job receipt; the supervisor restarts and the result is still
        byte-identical."""
        flag = tmp_path / "die"
        flag.write_text("")
        pool = WorkerPool(size=1, seed=0, crash_flag=str(flag),
                          backoff_base=0.01)
        try:
            opts = Options(nprocs=4)
            got, _ = ServiceCompiler(pool=pool).compile(BASE, opts)
            assert got.text() == compile_program(BASE, opts).text()
            st = pool.stats()
            assert st["crashes"] >= 1
            assert st["retries"] >= 1
            assert st["jobs_ok"] >= 1
        finally:
            pool.close()
        assert not flag.exists()

    def test_externally_killed_worker_recovers(self, no_memo):
        """kill -9 on a live worker between jobs: the pool discards the
        corpse and spawns a replacement."""
        pool = WorkerPool(size=1, seed=0, backoff_base=0.01)
        try:
            opts = Options(nprocs=4)
            sc = ServiceCompiler(pool=pool)
            sc.compile(BASE, opts)
            # murder every idle worker
            for w in list(pool._idle):
                os.kill(w.proc.pid, 9)
                w.proc.wait(timeout=5)
            got, _ = sc.compile(EDIT_LEAF, opts)
            assert got.text() == compile_program(EDIT_LEAF, opts).text()
            assert pool.stats()["spawns"] >= 2
        finally:
            pool.close()

    def test_hang_detected_and_killed(self, tmp_path, no_memo):
        """The hang flag wedges one worker mid-job; the deadline read
        SIGKILLs it and the retry succeeds."""
        flag = tmp_path / "hang"
        flag.write_text("")
        pool = WorkerPool(size=1, seed=0, hang_flag=str(flag),
                          job_timeout_s=1.0, backoff_base=0.01)
        try:
            opts = Options(nprocs=4)
            t0 = time.monotonic()
            got, _ = ServiceCompiler(pool=pool).compile(BASE, opts)
            assert got.text() == compile_program(BASE, opts).text()
            assert time.monotonic() - t0 < 30  # bounded, not wedged
            assert pool.stats()["hangs"] >= 1
        finally:
            pool.close()

    def test_backoff_is_deterministic(self):
        p1 = WorkerPool(seed=7)
        p2 = WorkerPool(seed=7)
        p3 = WorkerPool(seed=8)
        for p in (p1, p2, p3):
            p._consec_failures = 3
        a = p1._backoff_locked()
        assert a == p2._backoff_locked()
        assert a != p3._backoff_locked()
        assert 0 < a <= p1.backoff_cap

    def test_backoff_grows_exponentially(self):
        p = WorkerPool(seed=0, backoff_base=0.1, backoff_cap=100.0)
        raw = []
        for n in (1, 2, 3, 4):
            p._consec_failures = n
            # strip jitter by sampling many times is overkill: raw
            # pre-jitter value is base * 2**(n-1), jitter in [0.5, 1.0]
            b = p._backoff_locked()
            lo = 0.1 * 2 ** (n - 1) * 0.5
            hi = 0.1 * 2 ** (n - 1)
            assert lo <= b <= hi
            raw.append(b)

    def test_retries_exhausted_is_structured(self, tmp_path, no_memo):
        """A flag re-armed before every job defeats all retries: the
        pool must give up with a retryable error, not loop forever."""
        flag = tmp_path / "die"

        class AlwaysCrashPool(WorkerPool):
            # re-arm per *attempt*: the flag is consumed per job, and
            # retries all happen inside one _run_job call
            def _acquire(self):
                flag.write_text("")
                return super()._acquire()

        pool = AlwaysCrashPool(size=1, seed=0, max_retries=1,
                               crash_flag=str(flag), backoff_base=0.01)
        try:
            with pytest.raises(ServiceError) as ei:
                pool.compile_procs(BASE, Options(nprocs=4), ["p"],
                                   {}, "p")
            assert ei.value.retryable
        finally:
            pool.close()

    def test_compiler_falls_back_in_process_when_pool_dead(
            self, tmp_path, no_memo):
        """Retries exhausted → the ServiceCompiler compiles locally;
        the request still succeeds byte-identically."""
        flag = tmp_path / "die"

        class AlwaysCrashPool(WorkerPool):
            def _acquire(self):
                flag.write_text("")
                return super()._acquire()

        pool = AlwaysCrashPool(size=1, seed=0, max_retries=0,
                               crash_flag=str(flag), backoff_base=0.01)
        try:
            opts = Options(nprocs=4)
            got, stats = ServiceCompiler(pool=pool).compile(BASE, opts)
            assert got.text() == compile_program(BASE, opts).text()
            assert stats["compiled"] == stats["procs"]
        finally:
            pool.close()


class TestDaemonWorkerCrash:
    def test_daemon_crash_recovery_end_to_end(self, tmp_path, no_memo):
        """Full stack: daemon + pool + crash flag.  The client sees a
        normal, correct reply; the daemon's stats show the crash."""
        flag = tmp_path / "die"
        flag.write_text("")
        path = sock_path(tmp_path)
        d = CompileDaemon(path, pool_size=1, seed=0,
                          crash_flag=str(flag))
        d.pool.backoff_base = 0.01
        t = d.serve_in_thread()
        try:
            opts = Options(nprocs=4)
            got = CompileClient(path).compile(BASE, opts)
            assert got.text() == compile_program(BASE, opts).text()
            st = CompileClient(path).stats()
            assert st["pool"]["crashes"] >= 1
        finally:
            d.stop()
            t.join(timeout=5)


# ---------------------------------------------------------------------------
# store corruption
# ---------------------------------------------------------------------------


class TestStoreCorruption:
    def test_truncated_entries_regenerate_identically(self, tmp_path,
                                                      no_memo):
        d = str(tmp_path / "store")
        opts = Options(nprocs=4)
        ServiceCompiler(SummaryStore(d)).compile(BASE, opts)
        for name in os.listdir(d):
            with open(os.path.join(d, name), "r+b") as fh:
                fh.truncate(7)
        store = SummaryStore(d)
        got, stats = ServiceCompiler(store).compile(BASE, opts)
        assert got.text() == compile_program(BASE, opts).text()
        assert stats["compiled"] == stats["procs"]
        assert store.counters["corrupt"] == stats["procs"]
        # and the regenerated entries are served on the next pass
        _, stats2 = ServiceCompiler(SummaryStore(d)).compile(BASE, opts)
        assert stats2["reused"] == stats2["procs"]

    def test_garbage_entries_regenerate_identically(self, tmp_path,
                                                    no_memo):
        d = str(tmp_path / "store")
        opts = Options(nprocs=4)
        ServiceCompiler(SummaryStore(d)).compile(BASE, opts)
        for name in os.listdir(d):
            with open(os.path.join(d, name), "wb") as fh:
                fh.write(os.urandom(200))
        got, _ = ServiceCompiler(SummaryStore(d)).compile(BASE, opts)
        assert got.text() == compile_program(BASE, opts).text()

    def test_no_partial_entries_on_crash(self, tmp_path, no_memo):
        """Store writes are tempfile+rename: after any number of
        compiles, every published entry must load cleanly (no torn
        writes visible under the final name)."""
        d = str(tmp_path / "store")
        opts = Options(nprocs=4)
        ServiceCompiler(SummaryStore(d)).compile(BASE, opts)
        ServiceCompiler(SummaryStore(d)).compile(EDIT_LEAF, opts)
        store = SummaryStore(d)
        entries = [n for n in os.listdir(d) if n.startswith("proc-")]
        assert entries
        for name in entries:
            key = name[len("proc-"):-len(".pkl")]
            assert store._disk_load(key) is not None
        assert store.counters["corrupt"] == 0


# ---------------------------------------------------------------------------
# queue flood and shedding
# ---------------------------------------------------------------------------


class TestFlood:
    def _slow_daemon(self, tmp_path, monkeypatch, delay=0.3,
                     queue_limit=2):
        """A daemon whose front end is artificially slow, so the queue
        actually fills."""
        import repro.service.compiler as svc_compiler

        real = svc_compiler.front_end

        def slow_front_end(*a, **kw):
            time.sleep(delay)
            return real(*a, **kw)

        monkeypatch.setattr(svc_compiler, "front_end", slow_front_end)
        path = sock_path(tmp_path)
        d = CompileDaemon(path, pool_size=0, handlers=1,
                          queue_limit=queue_limit)
        t = d.serve_in_thread()
        return d, t, path

    def test_flood_yields_complete_or_retryable(self, tmp_path,
                                                monkeypatch, no_memo):
        """Every flooded request either completes byte-identically or
        gets a structured retryable overloaded/deadline error."""
        d, t, path = self._slow_daemon(tmp_path, monkeypatch)
        cold_text = compile_program(BASE, Options(nprocs=4)).text()
        results = []

        def one(i):
            try:
                cp = CompileClient(path).compile(BASE, Options(nprocs=4))
                results.append(("ok", cp.text()))
            except ServiceError as e:
                results.append(("err", e))

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(8)]
        try:
            for th in threads:
                th.start()
            for th in threads:
                th.join(timeout=60)
            assert len(results) == 8
            oks = [r for r in results if r[0] == "ok"]
            errs = [r for r in results if r[0] == "err"]
            assert oks, "nothing completed under flood"
            assert errs, "queue_limit=2/handlers=1 must refuse some of " \
                         "8 concurrent requests"
            for _, text in oks:
                assert text == cold_text
            for _, e in errs:
                assert e.retryable
                assert e.kind in ("overloaded", "deadline", "shutdown")
                if e.kind == "overloaded":
                    assert e.retry_after_s and e.retry_after_s > 0
            assert d.counters["overloaded"] >= 1
        finally:
            d.stop()
            t.join(timeout=5)

    def test_speculative_shed_for_non_speculative(self, tmp_path,
                                                  monkeypatch, no_memo):
        """With the queue full of speculation, a non-speculative
        arrival sheds the oldest speculative request."""
        d, t, path = self._slow_daemon(tmp_path, monkeypatch,
                                       delay=0.8, queue_limit=1)
        spec_result = {}
        try:
            # occupy the single handler
            occupier = threading.Thread(
                target=lambda: CompileClient(path).compile(
                    BASE, Options(nprocs=4)))
            occupier.start()
            time.sleep(0.3)

            # fill the queue with one speculative request
            def spec():
                try:
                    CompileClient(path).compile(
                        EDIT_LEAF, Options(nprocs=4), speculative=True)
                    spec_result["outcome"] = "ok"
                except ServiceError as e:
                    spec_result["outcome"] = e.kind
                    spec_result["err"] = e

            sp = threading.Thread(target=spec)
            sp.start()
            time.sleep(0.3)

            # the non-speculative newcomer must be accepted
            cp = CompileClient(path).compile(BASE, Options(nprocs=4))
            assert cp.text() == compile_program(
                BASE, Options(nprocs=4)).text()
            sp.join(timeout=30)
            occupier.join(timeout=30)
            assert spec_result["outcome"] == "overloaded"
            assert spec_result["err"].retryable
            assert d.counters["shed"] == 1
        finally:
            d.stop()
            t.join(timeout=5)

    def test_full_queue_refuses_speculative(self, tmp_path, monkeypatch,
                                            no_memo):
        d, t, path = self._slow_daemon(tmp_path, monkeypatch,
                                       delay=0.8, queue_limit=1)
        try:
            occupier = threading.Thread(
                target=lambda: CompileClient(path).compile(
                    BASE, Options(nprocs=4)))
            occupier.start()
            time.sleep(0.3)
            filler = threading.Thread(
                target=lambda: CompileClient(path).compile(
                    EDIT_LEAF, Options(nprocs=4)))
            filler.start()
            time.sleep(0.3)
            with pytest.raises(ServiceError) as ei:
                CompileClient(path).compile(
                    BASE, Options(nprocs=8), speculative=True)
            assert ei.value.kind == "overloaded"
            assert ei.value.retryable
            occupier.join(timeout=30)
            filler.join(timeout=30)
        finally:
            d.stop()
            t.join(timeout=5)


# ---------------------------------------------------------------------------
# protocol abuse
# ---------------------------------------------------------------------------


class TestProtocolAbuse:
    def test_garbage_bytes_do_not_kill_daemon(self, tmp_path):
        path = sock_path(tmp_path)
        d = CompileDaemon(path, pool_size=0,
                          request_read_timeout_s=0.5)
        t = d.serve_in_thread()
        try:
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.connect(path)
            s.sendall(b"\xde\xad\xbe\xef" * 100)
            s.close()
            # slow-loris: connect and send nothing
            s2 = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s2.connect(path)
            time.sleep(0.8)
            s2.close()
            # daemon still alive and serving
            assert CompileClient(path).ping()["pong"]
        finally:
            d.stop()
            t.join(timeout=5)

    def test_daemon_died_between_requests_falls_back(self, tmp_path,
                                                     no_memo):
        path = sock_path(tmp_path)
        d = CompileDaemon(path, pool_size=0)
        t = d.serve_in_thread()
        CompileClient(path).shutdown()
        t.join(timeout=5)
        opts = Options(nprocs=4)
        got, info = compile_with_fallback(BASE, opts, server=path)
        assert info["used"] == "local"
        assert got.text() == compile_program(BASE, opts).text()


# ---------------------------------------------------------------------------
# end-to-end: chaos never changes results
# ---------------------------------------------------------------------------


class TestChaosDifferential:
    def test_crashy_service_run_equals_cold_run(self, tmp_path,
                                                no_memo):
        """Compile through a daemon whose only worker crashes once,
        then *run* both programs: gathered arrays, virtual clocks and
        message counts must match exactly."""
        import numpy as np

        flag = tmp_path / "die"
        flag.write_text("")
        path = sock_path(tmp_path)
        d = CompileDaemon(path, pool_size=1, seed=0,
                          crash_flag=str(flag),
                          store_dir=str(tmp_path / "store"))
        d.pool.backoff_base = 0.01
        t = d.serve_in_thread()
        try:
            opts = Options(nprocs=4)
            cold = compile_program(BASE, opts)
            got = CompileClient(path).compile(BASE, opts)
            r1, r2 = cold.run(cost=FREE), got.run(cost=FREE)
            assert np.array_equal(r1.gathered("x"), r2.gathered("x"))
            assert r1.stats.time_us == r2.stats.time_us
            assert r1.stats.messages == r2.stats.messages
            assert r1.stats.bytes == r2.stats.bytes
        finally:
            d.stop()
            t.join(timeout=5)
