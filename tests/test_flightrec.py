"""Flight-recorder and postmortem-bundle tests.

The recorder must stay bounded (O(P · capacity) memory no matter how
long the run), attach automatically to untraced runs without leaking
into ``SPMDResult.trace``, and — when ``REPRO_POSTMORTEM_DIR`` is set —
a run that dies (deadlock on any backend, crashed service worker) must
leave one complete JSON bundle behind.
"""

from __future__ import annotations

import json

import pytest

from repro.core.options import Options
from repro.machine import FREE, Machine
from repro.machine.network import SimulationError
from repro.obs import Tracer
from repro.obs.flightrec import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    dump_postmortem,
    flightrec_capacity,
)
from repro.obs.metrics import MetricsRegistry
from repro.service import ServiceCompiler, WorkerPool

from .test_service import BASE

SCHEDULERS = ("coop", "threads", "event")


# ---------------------------------------------------------------------------
# configuration and ring bounding
# ---------------------------------------------------------------------------


class TestCapacity:
    @pytest.mark.parametrize("env,expect", [
        (None, DEFAULT_CAPACITY),
        ("", DEFAULT_CAPACITY),
        ("1", DEFAULT_CAPACITY),
        ("on", DEFAULT_CAPACITY),
        ("0", 0),
        ("off", 0),
        ("64", 64),
        ("-3", 0),
        ("garbage", DEFAULT_CAPACITY),
    ])
    def test_parsing(self, monkeypatch, env, expect):
        if env is None:
            monkeypatch.delenv("REPRO_FLIGHTREC", raising=False)
        else:
            monkeypatch.setenv("REPRO_FLIGHTREC", env)
        assert flightrec_capacity() == expect

    def test_ring_is_bounded(self):
        fr = FlightRecorder(2, capacity=8)
        for i in range(100):
            fr.rank_event(0, "net.send", float(i))
        assert fr.events_seen == 100
        assert len(fr.rank_events[0]) == 8
        # only the most recent events survive
        assert [e["ts"] for e in fr.rank_events[0]] == \
            [float(i) for i in range(92, 100)]
        tail = fr.tail()
        assert tail["capacity"] == 8 and tail["events_seen"] == 100
        assert set(tail["ranks"]) == {"0"}  # silent ranks omitted

    def test_machine_attachment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_FLIGHTREC", raising=False)
        m = Machine(2)
        assert isinstance(m.tracer, FlightRecorder)
        assert m.user_tracer is None  # the recorder is not a user trace
        monkeypatch.setenv("REPRO_FLIGHTREC", "0")
        assert Machine(2).tracer is None
        # an explicit trace wins: no recorder rides along
        monkeypatch.delenv("REPRO_FLIGHTREC", raising=False)
        m = Machine(2, trace=True)
        assert m.tracer is m.user_tracer
        assert isinstance(m.tracer, Tracer)
        assert not isinstance(m.tracer, FlightRecorder)


# ---------------------------------------------------------------------------
# postmortem bundles
# ---------------------------------------------------------------------------


def _load_bundle(directory, kind):
    files = sorted(directory.glob(f"postmortem-{kind}-*.json"))
    assert files, f"no {kind} bundle in {directory}"
    return json.loads(files[-1].read_text())


class TestDumpPostmortem:
    def test_disabled_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_POSTMORTEM_DIR", raising=False)
        assert dump_postmortem("unit-test") is None

    def test_explicit_directory(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_POSTMORTEM_DIR", raising=False)
        path = dump_postmortem("unit-test",
                               error=ValueError("boom"),
                               directory=str(tmp_path))
        assert path is not None
        bundle = json.loads((tmp_path / path.split("/")[-1]).read_text())
        assert bundle["schema"] == 1 and bundle["kind"] == "unit-test"
        assert bundle["error"] == {"type": "ValueError",
                                   "message": "boom"}

    def test_never_raises(self, tmp_path, monkeypatch):
        # un-creatable directory: the dump reports None, not an error
        blocker = tmp_path / "file"
        blocker.write_text("")
        monkeypatch.setenv("REPRO_POSTMORTEM_DIR",
                           str(blocker / "nested"))
        assert dump_postmortem("unit-test") is None


@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestDeadlockBundle:
    def test_deadlock_dumps_bundle(self, tmp_path, monkeypatch,
                                   scheduler):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_FLIGHTREC", raising=False)
        monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path))

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 7, "other", 8)  # tag 7, never awaited
            else:
                ctx.recv(0, 8)  # tag 8, never sent

        with pytest.raises(SimulationError, match="deadlock|aborted"):
            Machine(2, FREE, timeout_s=10.0,
                    scheduler=scheduler).run(prog)
        bundle = _load_bundle(tmp_path, "simulation-error")
        assert bundle["kind"] == "simulation-error"
        assert bundle["error"]["type"] in ("SimulationError",
                                           "DeadlockError")
        dl = bundle["deadlock"]
        assert dl is not None and dl["waits"]
        assert any(w["state"].startswith("blocked") for w in dl["waits"])
        assert "rank 1" in dl["describe"]
        # the flight recorder caught the run's final moments
        assert bundle["events"]["events_seen"] > 0
        assert bundle["events"]["ranks"]
        assert bundle["stats"]["nprocs"] == 2
        assert bundle["extra"]["scheduler"] == scheduler


class TestEventGeneratorBundle:
    def test_generator_programs_dump_too(self, tmp_path, monkeypatch):
        """The event backend's native program style — generator
        coroutines — takes the same postmortem path."""
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_FLIGHTREC", raising=False)
        monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path))

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 7, "other", 8)
            else:
                yield from ctx.recv_y(0, 8)  # never sent

        with pytest.raises(SimulationError, match="deadlock|aborted"):
            Machine(2, FREE, timeout_s=10.0, scheduler="event").run(prog)
        bundle = _load_bundle(tmp_path, "simulation-error")
        assert bundle["deadlock"] is not None
        assert bundle["events"]["events_seen"] > 0


class TestWorkerCrashBundle:
    def test_crashed_worker_dumps_bundle(self, tmp_path, monkeypatch):
        """A SIGKILLed compile worker is discarded, counted in the
        restart metrics, and leaves a worker-crash bundle — while the
        request itself still completes on the replacement worker."""
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        pm_dir = tmp_path / "pm"
        monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(pm_dir))
        flag = tmp_path / "die"
        flag.write_text("")
        reg = MetricsRegistry()
        pool = WorkerPool(size=1, seed=0, crash_flag=str(flag),
                          backoff_base=0.01, metrics=reg)
        try:
            ServiceCompiler(pool=pool).compile(BASE, Options(nprocs=4))
            assert pool.stats()["crashes"] >= 1
        finally:
            pool.close()
        bundle = _load_bundle(pm_dir, "worker-crash")
        assert bundle["kind"] == "worker-crash"
        assert bundle["extra"]["cause"] == "crashes"
        assert bundle["extra"]["worker_pid"] > 0
        restarts = reg.counter("fdc_worker_restarts_total")
        assert restarts.value(cause="crashes") >= 1.0
