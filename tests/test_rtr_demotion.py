"""Graceful degradation: unanalyzable procedures demote to run-time
resolution instead of aborting the whole compilation.

The paper's compiler always has run-time resolution (its Mode.RTR
baseline) as a universally-correct fallback; these tests pin the
driver's use of it as a per-procedure safety net — the rest of the
program keeps its optimized interprocedural communication, the demoted
procedure stays correct, and ``strict=True`` restores the old
fail-fast behavior for compiler development.
"""

import numpy as np
import pytest

from repro.core import CompileError, Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import FREE

#: main is fully analyzable; ``shade`` reads distributed data in a
#: branch condition inside a partitioned loop — the one shape the
#: communication planner refuses to compile
SRC = """
program p
real x(16), y(16)
align y(i) with x(i)
distribute x(block)
do i = 1, 16
  x(i) = i * 1.0
  y(i) = 0.0
enddo
call shade(x, y)
do i = 1, 16
  y(i) = y(i) * 2.0
enddo
end

subroutine shade(x, y)
real x(16), y(16)
do i = 2, 16
  if (x(i - 1) > 3.0) then
    y(i) = 1.0
  endif
enddo
end
"""


class TestDemotion:
    def test_demoted_subroutine_still_correct(self):
        seq = run_sequential(parse(SRC))
        cp = compile_program(SRC, Options(nprocs=4, mode=Mode.INTER))
        res = cp.run(cost=FREE, timeout_s=30.0)
        for name in ("x", "y"):
            assert np.allclose(res.gathered(name), seq.arrays[name].data)

    def test_only_the_offender_is_demoted(self):
        cp = compile_program(SRC, Options(nprocs=4, mode=Mode.INTER))
        assert len(cp.report.rtr_demotions) == 1
        assert cp.report.rtr_demotions[0].startswith("shade:")
        assert "branch condition" in cp.report.rtr_demotions[0]

    def test_explain_reports_demotion(self):
        cp = compile_program(SRC, Options(nprocs=4, mode=Mode.INTER))
        text = cp.explain()
        assert "demoted to run-time resolution" in text
        assert "shade" in text

    def test_demoted_body_uses_runtime_resolution(self):
        """The demoted procedure's node text carries RTR ownership
        guards; the analyzable main does not."""
        cp = compile_program(SRC, Options(nprocs=4, mode=Mode.INTER))
        text = cp.text()
        assert "owner(" in text

    def test_strict_restores_fail_fast(self):
        with pytest.raises(CompileError, match="branch condition"):
            compile_program(
                SRC, Options(nprocs=4, mode=Mode.INTER, strict=True)
            )

    def test_strict_accepts_clean_programs(self):
        src = """
program p
real x(8)
distribute x(block)
do i = 1, 8
  x(i) = i * 1.0
enddo
end
"""
        cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER,
                                          strict=True))
        assert cp.report.rtr_demotions == []


class TestDemotionCli:
    @pytest.fixture
    def src_file(self, tmp_path):
        p = tmp_path / "demote.fd"
        p.write_text(SRC)
        return str(p)

    def test_report_lists_demotion(self, src_file, capsys):
        from repro.cli import main

        assert main([src_file, "--report", "--no-text"]) == 0
        out = capsys.readouterr().out
        assert "! rtr-demotion shade:" in out

    def test_strict_flag_fails_compilation(self, src_file, capsys):
        from repro.cli import main

        assert main([src_file, "--strict", "--no-text"]) == 1
        err = capsys.readouterr().err
        assert "compilation failed" in err

    def test_demoted_program_runs_and_verifies(self, src_file, capsys):
        from repro.cli import main

        assert main([src_file, "--run", "--verify", "--no-text",
                     "--cost", "free"]) == 0
        out = capsys.readouterr().out
        assert "! verify y: OK" in out
