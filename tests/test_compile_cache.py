"""Compile-cache robustness: the ``REPRO_COMPILE_CACHE`` disk tier.

``REPRO_COMPILE_CACHE`` semantics: ``0`` disables memoization, ``1``
(or unset) keeps the in-process memo, any other value names a
directory holding a persistent cross-process cache.  The disk tier
must follow the same contract as ``codegen/cache.py``: atomic
mkstemp+replace writes, self-describing headers, and *every* failure
soft — corrupt entries regenerate silently, an unwritable directory
degrades to uncached compilation with a trace decision event, and
concurrent writers never produce torn reads.
"""

import hashlib
import os
import subprocess
import sys

import pytest

from repro.core import Options, compile_program
from repro.core.driver import (
    _compile_cache,
    _disk_entry_path,
    compile_cache_stats,
)
from repro.obs import Tracer

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def make_src(n):
    """A unique tiny program per *n* (unique cache keys per test)."""
    return (f"program p\nreal x({n})\ndistribute x(block)\n"
            f"do i = 1, {n}\n  x(i) = i\nenddo\nend\n")


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    d = str(tmp_path / "ccache")
    monkeypatch.setenv("REPRO_COMPILE_CACHE", d)
    _compile_cache.clear()
    yield d
    _compile_cache.clear()


class TestDiskTier:
    def test_roundtrip_across_processes_simulated(self, cache_dir):
        src = make_src(10)
        opts = Options(nprocs=4)
        first = compile_program(src, opts)
        assert os.listdir(cache_dir)  # entry published
        _compile_cache.clear()  # simulate a fresh process
        before = compile_cache_stats()["disk_hits"]
        second = compile_program(src, opts)
        assert compile_cache_stats()["disk_hits"] == before + 1
        assert second.text() == first.text()

    def test_entry_is_self_describing(self, cache_dir):
        src = make_src(11)
        opts = Options(nprocs=4)
        compile_program(src, opts)
        path = _disk_entry_path(cache_dir, src, opts)
        with open(path, "rb") as fh:
            head = fh.readline()
        assert head.startswith(b"# repro-compile ")
        assert os.path.basename(path).encode() in head

    def test_corrupt_entry_regenerates_silently(self, cache_dir):
        src = make_src(12)
        opts = Options(nprocs=4)
        first = compile_program(src, opts)
        path = _disk_entry_path(cache_dir, src, opts)
        with open(path, "r+b") as fh:
            fh.truncate(9)
        _compile_cache.clear()
        again = compile_program(src, opts)
        assert again.text() == first.text()

    def test_garbage_entry_regenerates_silently(self, cache_dir):
        src = make_src(13)
        opts = Options(nprocs=4)
        first = compile_program(src, opts)
        path = _disk_entry_path(cache_dir, src, opts)
        with open(path, "wb") as fh:
            fh.write(os.urandom(64))
        _compile_cache.clear()
        assert compile_program(src, opts).text() == first.text()

    def test_no_temp_droppings(self, cache_dir):
        for n in (14, 15, 16):
            compile_program(make_src(n), Options(nprocs=4))
        assert not [f for f in os.listdir(cache_dir)
                    if f.endswith(".tmp")]

    def test_off_means_off(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        src = make_src(17)
        a = compile_program(src, Options(nprocs=4))
        b = compile_program(src, Options(nprocs=4))
        assert a is not b  # no memo sharing


class TestUnwritableDirectory:
    def test_degrades_to_uncached_with_decision(self, tmp_path,
                                                monkeypatch):
        """A cache 'directory' that cannot be created (a path beneath
        an existing *file* — the same OSError family as a read-only
        dir, but reproducible as root) must not fail the compilation;
        it records a compile.cache-degraded decision."""
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        bad = str(blocker / "cache")
        monkeypatch.setenv("REPRO_COMPILE_CACHE", bad)
        _compile_cache.clear()
        before = compile_cache_stats()["disk_degraded"]
        tracer = Tracer()
        cp = compile_program(make_src(18), Options(nprocs=4),
                             trace=tracer)
        assert cp.text()  # compilation itself succeeded
        assert compile_cache_stats()["disk_degraded"] == before + 1
        degraded = [e for e in tracer.host_events
                    if e.get("name") == "compile.cache-degraded"]
        assert len(degraded) == 1

    def test_decision_once_per_directory(self, tmp_path, monkeypatch):
        blocker = tmp_path / "blocker2"
        blocker.write_text("")
        bad = str(blocker / "cache")
        monkeypatch.setenv("REPRO_COMPILE_CACHE", bad)
        _compile_cache.clear()
        tracer = Tracer()
        compile_program(make_src(19), Options(nprocs=4), trace=tracer)
        compile_program(make_src(20), Options(nprocs=4), trace=tracer)
        degraded = [e for e in tracer.host_events
                    if e.get("name") == "compile.cache-degraded"]
        assert len(degraded) == 1  # reported once, not per compile

    def test_unreadable_entries_are_soft(self, cache_dir):
        """A directory that exists but whose entry cannot be read
        (here: replaced by a directory) is a silent miss."""
        src = make_src(21)
        opts = Options(nprocs=4)
        first = compile_program(src, opts)
        path = _disk_entry_path(cache_dir, src, opts)
        os.unlink(path)
        os.makedirs(path)  # open(path, "rb") now raises IsADirectoryError
        _compile_cache.clear()
        assert compile_program(src, opts).text() == first.text()


_WORKER_SCRIPT = r"""
import hashlib, os, sys
sys.path.insert(0, {src_root!r})
from repro.core import Options, compile_program
from repro.core.driver import _compile_cache

def make_src(n):
    return ("program p\nreal x(%d)\ndistribute x(block)\n"
            "do i = 1, %d\n  x(i) = i\nenddo\nend\n" % (n, n))

out = []
for round in range(3):
    for n in (16, 24, 32, 40, 48):
        cp = compile_program(make_src(n), Options(nprocs=4))
        out.append(hashlib.sha256(cp.text().encode()).hexdigest()[:12])
        _compile_cache.clear()   # force the disk path every round
print(",".join(out))
"""


class TestConcurrentWriters:
    def test_two_processes_one_cache_dir(self, tmp_path):
        """Two processes compiling the same (program, options) set into
        one compile-cache + one codegen-cache dir: both must succeed
        with identical outputs, and every published entry must load
        cleanly afterwards (no torn reads from the mkstemp+replace
        path)."""
        cdir = str(tmp_path / "shared-compile")
        gdir = str(tmp_path / "shared-codegen")
        env = dict(os.environ,
                   REPRO_COMPILE_CACHE=cdir,
                   REPRO_CODEGEN_CACHE=gdir,
                   PYTHONPATH=SRC_ROOT)
        script = _WORKER_SCRIPT.format(src_root=SRC_ROOT)
        procs = [subprocess.Popen([sys.executable, "-c", script],
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE, env=env)
                 for _ in range(2)]
        outs = []
        for p in procs:
            out, err = p.communicate(timeout=300)
            assert p.returncode == 0, err.decode()
            outs.append(out.decode().strip())
        assert outs[0] == outs[1]  # identical hashes in both processes

        # every published entry is intact: a third pass, disk-only,
        # reproduces the same hashes without recompiling
        assert not [f for f in os.listdir(cdir) if f.endswith(".tmp")]
        p = subprocess.run([sys.executable, "-c", script],
                           capture_output=True, env=env, timeout=300)
        assert p.returncode == 0, p.stderr.decode()
        assert p.stdout.decode().strip() == outs[0]
