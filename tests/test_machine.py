"""Tests for the simulated MIMD machine: network, collectives, timing."""

import pytest

from repro.machine import (
    FREE,
    IPSC860,
    CostModel,
    Machine,
    SimulationError,
)


class TestPointToPoint:
    def test_ring_shift(self):
        def prog(ctx):
            if ctx.rank < ctx.nprocs - 1:
                ctx.send(ctx.rank + 1, 1, ctx.rank, 8)
            if ctx.rank > 0:
                return ctx.recv(ctx.rank - 1, 1)
            return None

        m = Machine(4, FREE)
        res = m.run(prog)
        assert res == [None, 0, 1, 2]
        assert m.stats.messages == 3
        assert m.stats.bytes == 24

    def test_tag_matching(self):
        """Receives match on (src, tag) even when messages arrive out of
        tag order."""

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 5, "five", 8)
                ctx.send(1, 3, "three", 8)
            elif ctx.rank == 1:
                a = ctx.recv(0, 3)
                b = ctx.recv(0, 5)
                return (a, b)
            return None

        m = Machine(2, FREE)
        res = m.run(prog)
        assert res[1] == ("three", "five")

    def test_send_to_self_rejected(self):
        def prog(ctx):
            ctx.send(ctx.rank, 0, "x", 8)

        with pytest.raises(SimulationError, match="itself"):
            Machine(2, FREE).run(prog)

    def test_invalid_destination(self):
        def prog(ctx):
            ctx.send(99, 0, "x", 8)

        with pytest.raises(SimulationError, match="invalid"):
            Machine(2, FREE).run(prog)

    def test_deadlock_detected(self):
        def prog(ctx):
            if ctx.rank == 1:
                ctx.recv(0, 42)  # never sent

        with pytest.raises(SimulationError, match="deadlock|aborted"):
            Machine(2, FREE, timeout_s=0.5).run(prog)

    def test_out_of_order_tags_from_multiple_sources(self):
        """Keyed queues: a receiver drains tags in any order it likes,
        from interleaved sources, without losing or reordering messages
        within one (src, tag) stream."""

        def prog(ctx):
            if ctx.rank == 0:
                for tag in range(9, -1, -1):  # descending send order
                    ctx.send(2, tag, ("a", tag), 8)
            elif ctx.rank == 1:
                for tag in range(10):  # ascending send order
                    ctx.send(2, tag, ("b", tag), 8)
            else:
                got = []
                for tag in range(10):  # ascending receive order
                    got.append(ctx.recv(0, tag))
                    got.append(ctx.recv(1, 9 - tag))
                return got

        res = Machine(3, FREE).run(prog)
        expect = [x for t in range(10) for x in (("a", t), ("b", 9 - t))]
        assert res[2] == expect

    def test_deadlock_despite_pending_unrelated_message(self):
        """The deadlock timeout still fires when traffic is queued but
        none of it matches the awaited (src, tag)."""

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 7, "other", 8)
            else:
                ctx.recv(0, 8)  # tag 8 never sent

        with pytest.raises(SimulationError, match="deadlock|aborted"):
            Machine(2, FREE, timeout_s=0.5).run(prog)


class TestVirtualTime:
    def test_transfer_latency_dominates_receiver_clock(self):
        cost = CostModel(alpha=100.0, beta=1.0, flop=0.0, loop_overhead=0.0,
                         copy=0.0)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 0, b"x" * 50, 50)
                return ctx.clock
            ctx.recv(0, 0)
            return ctx.clock

        m = Machine(2, cost)
        t_send, t_recv = m.run(prog)
        assert t_send == pytest.approx(100.0)       # alpha
        assert t_recv == pytest.approx(150.0)       # alpha + 50*beta

    def test_receiver_not_rewound(self):
        """A busy receiver's clock never goes backwards on recv."""
        cost = CostModel(alpha=1.0, beta=0.0, flop=1.0, loop_overhead=0.0,
                         copy=0.0)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 0, 1, 8)
            else:
                ctx.compute(10_000)  # busy until t=10000
                ctx.recv(0, 0)
                return ctx.clock
            return None

        m = Machine(2, cost)
        res = m.run(prog)
        assert res[1] >= 10_000

    def test_makespan_is_max_clock(self):
        def prog(ctx):
            ctx.compute(100 * (ctx.rank + 1))

        m = Machine(4, CostModel(flop=1.0))
        m.run(prog)
        assert m.stats.time_us == pytest.approx(400.0)

    def test_flop_accounting(self):
        def prog(ctx):
            ctx.compute(25)

        m = Machine(2, IPSC860)
        m.run(prog)
        assert all(
            t == pytest.approx(25 * IPSC860.flop)
            for t in m.stats.proc_times.values()
        )


class TestCollectives:
    def test_broadcast_value(self):
        def prog(ctx):
            return ctx.broadcast(2, "data" if ctx.rank == 2 else None, 32)

        res = Machine(4, FREE).run(prog)
        assert res == ["data"] * 4

    def test_broadcast_counts_once(self):
        def prog(ctx):
            ctx.broadcast(0, 1 if ctx.rank == 0 else None, 8)

        m = Machine(4, FREE)
        m.run(prog)
        assert m.stats.collectives == 1

    def test_allreduce_ops(self):
        def prog(ctx):
            s = ctx.allreduce(ctx.rank + 1, "sum")
            mx = ctx.allreduce(ctx.rank, "max")
            mn = ctx.allreduce(ctx.rank, "min")
            return (s, mx, mn)

        res = Machine(4, FREE).run(prog)
        assert all(r == (10, 3, 0) for r in res)

    def test_allreduce_maxloc(self):
        def prog(ctx):
            mags = [3.0, 9.0, 9.0, 1.0]
            return ctx.allreduce((mags[ctx.rank], ctx.rank), "maxloc")

        res = Machine(4, FREE).run(prog)
        # ties break to the smaller index
        assert all(r == (9.0, 1) for r in res)

    def test_collective_time_tree(self):
        cost = CostModel(alpha=10.0, beta=0.0, flop=0.0, loop_overhead=0.0,
                         copy=0.0)

        def prog(ctx):
            ctx.broadcast(0, 0 if ctx.rank == 0 else None, 0)
            return ctx.clock

        res = Machine(8, cost).run(prog)
        # log2(8) = 3 stages of alpha
        assert all(t == pytest.approx(30.0) for t in res)

    def test_barrier_synchronizes_clocks(self):
        cost = CostModel(alpha=0.0, beta=0.0, flop=1.0, loop_overhead=0.0,
                         copy=0.0)

        def prog(ctx):
            ctx.compute(100 * (ctx.rank + 1))
            ctx.barrier()
            return ctx.clock

        res = Machine(4, cost).run(prog)
        assert all(t == pytest.approx(400.0) for t in res)

    def test_exchange(self):
        def prog(ctx):
            out = {dst: f"{ctx.rank}->{dst}"
                   for dst in range(ctx.nprocs) if dst != ctx.rank}
            inc = ctx.exchange(out, 8)
            return sorted(inc.values())

        res = Machine(3, FREE).run(prog)
        assert res[0] == ["1->0", "2->0"]
        assert res[2] == ["0->2", "1->2"]

    def test_exchange_records_point_to_point_traffic(self):
        """A remap exchange is physically a bundle of sends: its traffic
        must land in the point-to-point message/byte counts."""

        def prog(ctx):
            out = {dst: b"x" * 8
                   for dst in range(ctx.nprocs) if dst != ctx.rank}
            ctx.exchange(out, 8 * len(out))

        m = Machine(3, FREE)
        m.run(prog)
        assert m.stats.messages == 6       # 3 ranks x 2 destinations
        assert m.stats.bytes == 3 * 16     # each rank contributed 16 B
        assert m.stats.total_bytes == m.stats.bytes


class TestErrors:
    def test_node_exception_propagates(self):
        def prog(ctx):
            if ctx.rank == 1:
                raise ValueError("boom")

        with pytest.raises(SimulationError, match="boom"):
            Machine(2, FREE).run(prog)

    def test_single_proc_machine(self):
        def prog(ctx):
            ctx.compute(10)
            return ctx.rank

        m = Machine(1, FREE)
        assert m.run(prog) == [0]

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            Machine(0)
