"""Tests for the simulated MIMD machine: network, collectives, timing,
instant deadlock diagnosis, and deterministic fault injection."""

import threading
import time

import pytest

from repro.machine import (
    FREE,
    IPSC860,
    SCHEDULERS,
    CostModel,
    FaultPlan,
    Machine,
    SimulationError,
)
from repro.machine.network import resolve_timeout


def node_threads():
    """Names of still-alive simulated node threads (should be none
    outside an active Machine.run)."""
    return [t.name for t in threading.enumerate()
            if t.name.startswith("node-")]


class TestPointToPoint:
    def test_ring_shift(self):
        def prog(ctx):
            if ctx.rank < ctx.nprocs - 1:
                ctx.send(ctx.rank + 1, 1, ctx.rank, 8)
            if ctx.rank > 0:
                return ctx.recv(ctx.rank - 1, 1)
            return None

        m = Machine(4, FREE)
        res = m.run(prog)
        assert res == [None, 0, 1, 2]
        assert m.stats.messages == 3
        assert m.stats.bytes == 24

    def test_tag_matching(self):
        """Receives match on (src, tag) even when messages arrive out of
        tag order."""

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 5, "five", 8)
                ctx.send(1, 3, "three", 8)
            elif ctx.rank == 1:
                a = ctx.recv(0, 3)
                b = ctx.recv(0, 5)
                return (a, b)
            return None

        m = Machine(2, FREE)
        res = m.run(prog)
        assert res[1] == ("three", "five")

    def test_send_to_self_rejected(self):
        def prog(ctx):
            ctx.send(ctx.rank, 0, "x", 8)

        with pytest.raises(SimulationError, match="itself"):
            Machine(2, FREE).run(prog)

    def test_invalid_destination(self):
        def prog(ctx):
            ctx.send(99, 0, "x", 8)

        with pytest.raises(SimulationError, match="invalid"):
            Machine(2, FREE).run(prog)

    def test_deadlock_detected(self):
        def prog(ctx):
            if ctx.rank == 1:
                ctx.recv(0, 42)  # never sent

        with pytest.raises(SimulationError, match="deadlock|aborted"):
            Machine(2, FREE, timeout_s=0.5).run(prog)

    def test_out_of_order_tags_from_multiple_sources(self):
        """Keyed queues: a receiver drains tags in any order it likes,
        from interleaved sources, without losing or reordering messages
        within one (src, tag) stream."""

        def prog(ctx):
            if ctx.rank == 0:
                for tag in range(9, -1, -1):  # descending send order
                    ctx.send(2, tag, ("a", tag), 8)
            elif ctx.rank == 1:
                for tag in range(10):  # ascending send order
                    ctx.send(2, tag, ("b", tag), 8)
            else:
                got = []
                for tag in range(10):  # ascending receive order
                    got.append(ctx.recv(0, tag))
                    got.append(ctx.recv(1, 9 - tag))
                return got

        res = Machine(3, FREE).run(prog)
        expect = [x for t in range(10) for x in (("a", t), ("b", 9 - t))]
        assert res[2] == expect

    def test_deadlock_despite_pending_unrelated_message(self):
        """The deadlock timeout still fires when traffic is queued but
        none of it matches the awaited (src, tag)."""

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 7, "other", 8)
            else:
                ctx.recv(0, 8)  # tag 8 never sent

        with pytest.raises(SimulationError, match="deadlock|aborted"):
            Machine(2, FREE, timeout_s=0.5).run(prog)


class TestVirtualTime:
    def test_transfer_latency_dominates_receiver_clock(self):
        cost = CostModel(alpha=100.0, beta=1.0, flop=0.0, loop_overhead=0.0,
                         copy=0.0)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 0, b"x" * 50, 50)
                return ctx.clock
            ctx.recv(0, 0)
            return ctx.clock

        m = Machine(2, cost)
        t_send, t_recv = m.run(prog)
        assert t_send == pytest.approx(100.0)       # alpha
        assert t_recv == pytest.approx(150.0)       # alpha + 50*beta

    def test_receiver_not_rewound(self):
        """A busy receiver's clock never goes backwards on recv."""
        cost = CostModel(alpha=1.0, beta=0.0, flop=1.0, loop_overhead=0.0,
                         copy=0.0)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 0, 1, 8)
            else:
                ctx.compute(10_000)  # busy until t=10000
                ctx.recv(0, 0)
                return ctx.clock
            return None

        m = Machine(2, cost)
        res = m.run(prog)
        assert res[1] >= 10_000

    def test_makespan_is_max_clock(self):
        def prog(ctx):
            ctx.compute(100 * (ctx.rank + 1))

        m = Machine(4, CostModel(flop=1.0))
        m.run(prog)
        assert m.stats.time_us == pytest.approx(400.0)

    def test_flop_accounting(self):
        def prog(ctx):
            ctx.compute(25)

        m = Machine(2, IPSC860)
        m.run(prog)
        assert all(
            t == pytest.approx(25 * IPSC860.flop)
            for t in m.stats.proc_times.values()
        )


class TestCollectives:
    def test_broadcast_value(self):
        def prog(ctx):
            return ctx.broadcast(2, "data" if ctx.rank == 2 else None, 32)

        res = Machine(4, FREE).run(prog)
        assert res == ["data"] * 4

    def test_broadcast_counts_once(self):
        def prog(ctx):
            ctx.broadcast(0, 1 if ctx.rank == 0 else None, 8)

        m = Machine(4, FREE)
        m.run(prog)
        assert m.stats.collectives == 1

    def test_allreduce_ops(self):
        def prog(ctx):
            s = ctx.allreduce(ctx.rank + 1, "sum")
            mx = ctx.allreduce(ctx.rank, "max")
            mn = ctx.allreduce(ctx.rank, "min")
            return (s, mx, mn)

        res = Machine(4, FREE).run(prog)
        assert all(r == (10, 3, 0) for r in res)

    def test_allreduce_maxloc(self):
        def prog(ctx):
            mags = [3.0, 9.0, 9.0, 1.0]
            return ctx.allreduce((mags[ctx.rank], ctx.rank), "maxloc")

        res = Machine(4, FREE).run(prog)
        # ties break to the smaller index
        assert all(r == (9.0, 1) for r in res)

    def test_collective_time_tree(self):
        cost = CostModel(alpha=10.0, beta=0.0, flop=0.0, loop_overhead=0.0,
                         copy=0.0)

        def prog(ctx):
            ctx.broadcast(0, 0 if ctx.rank == 0 else None, 0)
            return ctx.clock

        res = Machine(8, cost).run(prog)
        # log2(8) = 3 stages of alpha
        assert all(t == pytest.approx(30.0) for t in res)

    def test_barrier_synchronizes_clocks(self):
        cost = CostModel(alpha=0.0, beta=0.0, flop=1.0, loop_overhead=0.0,
                         copy=0.0)

        def prog(ctx):
            ctx.compute(100 * (ctx.rank + 1))
            ctx.barrier()
            return ctx.clock

        res = Machine(4, cost).run(prog)
        assert all(t == pytest.approx(400.0) for t in res)

    def test_exchange(self):
        def prog(ctx):
            out = {dst: f"{ctx.rank}->{dst}"
                   for dst in range(ctx.nprocs) if dst != ctx.rank}
            inc = ctx.exchange(out, 8)
            return sorted(inc.values())

        res = Machine(3, FREE).run(prog)
        assert res[0] == ["1->0", "2->0"]
        assert res[2] == ["0->2", "1->2"]

    def test_exchange_records_point_to_point_traffic(self):
        """A remap exchange is physically a bundle of sends: its traffic
        must land in the point-to-point message/byte counts."""

        def prog(ctx):
            out = {dst: b"x" * 8
                   for dst in range(ctx.nprocs) if dst != ctx.rank}
            ctx.exchange(out, 8 * len(out))

        m = Machine(3, FREE)
        m.run(prog)
        assert m.stats.messages == 6       # 3 ranks x 2 destinations
        assert m.stats.bytes == 3 * 16     # each rank contributed 16 B
        assert m.stats.total_bytes == m.stats.bytes


class TestDeadlockDiagnostics:
    """Deadlocks are declared the instant they become true — by the
    wait-for graph on the thread backend, natively ("no rank runnable")
    on the cooperative scheduler — with identical structured reports.
    With a 60 s safety-net timeout, each case must still fail well
    under a second on both backends."""

    @pytest.fixture(autouse=True, params=SCHEDULERS, ids=list(SCHEDULERS))
    def _backend(self, request):
        self.scheduler = request.param

    def _deadlock(self, nprocs, prog):
        t0 = time.monotonic()
        with pytest.raises(SimulationError) as ei:
            Machine(nprocs, FREE, timeout_s=60.0,
                    scheduler=self.scheduler).run(prog)
        assert time.monotonic() - t0 < 1.0, "detection was not instant"
        assert not node_threads(), "leaked node threads"
        report = ei.value.report
        assert report is not None, "no DeadlockReport attached"
        return ei.value, report

    def test_recv_with_no_sender(self):
        def prog(ctx):
            if ctx.rank == 2:
                ctx.recv(0, 42)  # never sent

        err, rep = self._deadlock(3, prog)
        assert rep.blocked_ranks == [2]
        assert rep.awaited[2] == (0, 42)
        assert "src=0" in str(err) and "tag=42" in str(err)

    def test_mismatched_barrier_membership(self):
        def prog(ctx):
            if ctx.rank != 0:  # rank 0 skips the barrier and finishes
                ctx.barrier()

        _, rep = self._deadlock(3, prog)
        assert rep.blocked_ranks == [1, 2]
        assert rep.awaited[1] == "barrier"
        assert "collective" in rep.reason

    def test_tag_mismatch(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, 7, "payload", 8)
            else:
                ctx.recv(0, 8)  # tag 8 never sent

        _, rep = self._deadlock(2, prog)
        assert rep.awaited[1] == (0, 8)
        # the mismatched message shows up in rank 1's pending summary
        assert rep.pending[1] == [((0, 7), 1)]

    def test_cyclic_recv_wait(self):
        """Two ranks each waiting on the other: a wait-for cycle."""

        def prog(ctx):
            ctx.recv(1 - ctx.rank, 0)

        _, rep = self._deadlock(2, prog)
        assert rep.blocked_ranks == [0, 1]
        assert rep.awaited == {0: (1, 0), 1: (0, 0)}

    def test_recv_from_finished_rank(self):
        """A rank that already finished can never satisfy the wait."""

        def prog(ctx):
            if ctx.rank == 1:
                ctx.recv(0, 0)

        _, rep = self._deadlock(2, prog)
        waits = {w.rank: w.state for w in rep.waits}
        assert waits[0] == "finished"
        assert waits[1] == "blocked-recv"

    def test_collective_vs_recv_split(self):
        """One rank in a barrier, one in a recv: neither can advance."""

        def prog(ctx):
            if ctx.rank == 0:
                ctx.barrier()
            else:
                ctx.recv(0, 9)

        _, rep = self._deadlock(2, prog)
        assert rep.awaited == {0: "barrier", 1: (0, 9)}

    def test_correct_barrier_heavy_program_not_flagged(self):
        """Regression guard for the release race: a rank finishing right
        as a barrier trips must not observe stale blocked states."""

        def prog(ctx):
            for i in range(200):
                if ctx.rank == 0:
                    ctx.send(1, i, i, 8)
                elif ctx.rank == 1:
                    assert ctx.recv(0, i) == i
                ctx.barrier()
            return ctx.rank

        for _ in range(5):
            assert Machine(3, FREE,
                           scheduler=self.scheduler).run(prog) == [0, 1, 2]
        assert not node_threads()

    def test_report_describe_lists_every_rank(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.recv(3, 1)

        _, rep = self._deadlock(4, prog)
        text = rep.describe()
        for r in range(4):
            assert f"rank {r}" in text


class TestTimeoutConfig:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIMEOUT", "7")
        assert resolve_timeout(3.0) == 3.0
        assert Machine(2, FREE, timeout_s=3.0).network.timeout_s == 3.0

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIMEOUT", "7.5")
        assert resolve_timeout(None) == 7.5
        assert Machine(2, FREE).network.timeout_s == 7.5

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TIMEOUT", raising=False)
        assert resolve_timeout(None) == 60.0

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TIMEOUT", "soon")
        assert resolve_timeout(None) == 60.0


class TestEventBackendTimeout:
    """Regression: the event backend runs the calendar loop on the
    calling thread, so a runaway (livelocking) node program used to
    escape the REPRO_SIM_TIMEOUT safety net the coop/threads backends
    enforce via per-park timeouts.  The loop now checks the wall-clock
    deadline periodically."""

    def test_livelock_hits_wall_clock_timeout(self):
        def prog(ctx):
            # endless ping-pong: every rank always makes progress, so
            # no deadlock is ever detectable — only the wall clock can
            # end this
            peer = 1 - ctx.rank
            i = 0
            while True:
                ctx.send(peer, i, 1, 8)
                ctx.recv(peer, i)
                i += 1

        t0 = time.monotonic()
        with pytest.raises(SimulationError) as ei:
            Machine(2, FREE, scheduler="event", timeout_s=0.5).run(prog)
        assert time.monotonic() - t0 < 30
        assert "timeout" in str(ei.value)
        # the teardown must not leak fiber threads (they'd trip later
        # tests' node_threads() checks)
        limit = time.monotonic() + 5
        while node_threads() and time.monotonic() < limit:
            time.sleep(0.01)
        assert not node_threads()

    def test_normal_program_unaffected(self):
        def prog(ctx):
            peer = 1 - ctx.rank
            for i in range(50):
                ctx.send(peer, i, ctx.rank, 8)
                ctx.recv(peer, i)
            return ctx.rank

        assert Machine(2, FREE, scheduler="event",
                       timeout_s=20.0).run(prog) == [0, 1]


class TestFaultInjection:
    def _ring(self, ctx):
        nxt = (ctx.rank + 1) % ctx.nprocs
        prv = (ctx.rank - 1) % ctx.nprocs
        total = 0
        for i in range(10):
            ctx.send(nxt, i, ctx.rank + i, 8)
            total += ctx.recv(prv, i)
            ctx.compute(50)
        return (total, ctx.allreduce(total, "sum"))

    def test_same_seed_reproduces_exactly(self):
        plan = FaultPlan(seed=11, delay_prob=0.5, delay_max_us=80.0,
                         drop_prob=0.2, retry_timeout_us=50.0)
        runs = []
        for _ in range(2):
            m = Machine(4, IPSC860, faults=plan)
            runs.append((m.run(self._ring), dict(m.stats.proc_times),
                         m.stats.messages, m.stats.retransmits))
        assert runs[0] == runs[1]

    def test_delivery_and_results_unchanged_only_clocks_move(self):
        m_clean = Machine(4, IPSC860)
        res_clean = m_clean.run(self._ring)
        plan = FaultPlan(seed=3, delay_prob=0.8, delay_max_us=500.0,
                         drop_prob=0.3, retry_timeout_us=100.0)
        m_chaos = Machine(4, IPSC860, faults=plan)
        res_chaos = m_chaos.run(self._ring)
        assert res_chaos == res_clean
        assert m_chaos.stats.messages == m_clean.stats.messages
        assert m_chaos.stats.bytes == m_clean.stats.bytes
        assert m_chaos.stats.collectives == m_clean.stats.collectives
        assert m_chaos.stats.faulted_messages > 0
        assert m_chaos.stats.retransmits > 0
        assert m_chaos.stats.time_us > m_clean.stats.time_us

    def test_rank_slowdown_scales_compute(self):
        def prog(ctx):
            ctx.compute(1000)
            return ctx.clock

        cost = CostModel(alpha=0.0, beta=0.0, flop=1.0, loop_overhead=0.0,
                         copy=0.0)
        res = Machine(2, cost,
                      faults=FaultPlan(slowdown={1: 2.5})).run(prog)
        assert res[0] == pytest.approx(1000.0)
        assert res[1] == pytest.approx(2500.0)

    def test_crash_at_clock_fails_cleanly(self):
        def prog(ctx):
            for i in range(100):
                ctx.compute(10)
                ctx.barrier()
            return "survived"

        t0 = time.monotonic()
        with pytest.raises(SimulationError, match="injected crash"):
            Machine(3, CostModel(flop=1.0),
                    faults=FaultPlan(crash_at={1: 250.0})).run(prog)
        assert time.monotonic() - t0 < 2.0
        assert not node_threads()

    def test_crash_identifies_rank(self):
        def prog(ctx):
            ctx.barrier()

        with pytest.raises(SimulationError, match=r"rank 2"):
            Machine(3, FREE,
                    faults=FaultPlan(crash_at={2: 0.0})).run(prog)

    def test_message_faults_pure_function_of_identity(self):
        plan = FaultPlan(seed=5, delay_prob=0.5, delay_max_us=100.0,
                         drop_prob=0.4)
        a = [plan.message_faults(0, 1, t, s)
             for t in range(20) for s in range(5)]
        b = [plan.message_faults(0, 1, t, s)
             for t in range(20) for s in range(5)]
        assert a == b
        for extra, retries in a:
            assert extra >= 0.0
            assert 0 <= retries <= plan.max_retries
        # some message must actually be perturbed at these probabilities
        assert any(extra > 0 for extra, _ in a)
        # a different seed perturbs a different subset
        other = FaultPlan(seed=6, delay_prob=0.5, delay_max_us=100.0,
                          drop_prob=0.4)
        assert a != [other.message_faults(0, 1, t, s)
                     for t in range(20) for s in range(5)]

    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "delay=0.5:80, drop=0.1, retry=50, slow=1:2.0, crash=2@5000",
            seed=7,
        )
        assert plan.seed == 7
        assert plan.delay_prob == 0.5 and plan.delay_max_us == 80.0
        assert plan.drop_prob == 0.1
        assert plan.retry_timeout_us == 50.0
        assert plan.slowdown == {1: 2.0}
        assert plan.crash_at == {2: 5000.0}
        assert plan.affects_messages

    def test_parse_rejects_garbage(self):
        for bad in ("frobnicate=1", "delay=often", "slow=1", "crash=2"):
            with pytest.raises(ValueError):
                FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "delay=0.25:40")
        monkeypatch.setenv("REPRO_FAULT_SEED", "9")
        plan = FaultPlan.from_env()
        assert plan.seed == 9 and plan.delay_prob == 0.25

    def test_machine_picks_up_env_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "slow=0:3.0")
        m = Machine(2, FREE)
        assert m.faults is not None
        assert m.faults.rank_slowdown(0) == 3.0


class TestErrors:
    def test_node_exception_propagates(self):
        def prog(ctx):
            if ctx.rank == 1:
                raise ValueError("boom")

        with pytest.raises(SimulationError, match="boom"):
            Machine(2, FREE).run(prog)

    def test_single_proc_machine(self):
        def prog(ctx):
            ctx.compute(10)
            return ctx.rank

        m = Machine(1, FREE)
        assert m.run(prog) == [0]

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            Machine(0)
