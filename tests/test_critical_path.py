"""Critical-path analysis on the paper's Fig 10 / Fig 12 pair.

The same program (Figure 4) compiled interprocedurally produces the
Figure 10 node program — communication vectorized out of the call loop
— while immediate instantiation produces Figure 12's per-call
send/recv.  The virtual-time critical path makes the difference
visible: the pipelined version's blocking chain is strictly shorter,
and in both versions the path tiles ``[0, final clock]`` exactly.
"""

from __future__ import annotations

import pytest

from repro.apps import FIG4
from repro.core.driver import compile_program
from repro.core.options import Mode, Options
from repro.machine import IPSC860
from repro.obs import critical_path, path_length


@pytest.fixture(scope="module")
def paths():
    out = {}
    for mode in (Mode.INTER, Mode.INTRA):
        cp = compile_program(FIG4, Options(nprocs=4, mode=mode))
        res = cp.run(cost=IPSC860, trace=True)
        segs = critical_path(res.trace, res.stats.proc_times)
        out[mode] = (res, segs)
    return out


def test_path_length_equals_final_clock(paths):
    for mode, (res, segs) in paths.items():
        T = res.stats.time_us
        tol = 1e-6 * max(1.0, T)
        assert abs(path_length(segs) - T) <= tol, mode
        assert abs(segs[0]["t0"]) <= tol, mode
        assert abs(segs[-1]["t1"] - T) <= tol, mode
        for a, b in zip(segs, segs[1:]):
            assert abs(a["t1"] - b["t0"]) <= tol, mode


def test_pipelined_critical_path_is_shorter(paths):
    inter = path_length(paths[Mode.INTER][1])
    intra = path_length(paths[Mode.INTRA][1])
    assert inter < intra
    # the gap is the paper's headline: vectorizing communication out of
    # the loop removes two orders of magnitude of message latency
    assert paths[Mode.INTER][0].stats.messages < \
        paths[Mode.INTRA][0].stats.messages


def test_path_segments_carry_provenance(paths):
    """Blocking segments name the source statement that emitted the
    message, so a hot spot on the path is attributable to a line of the
    original program."""
    for mode, (_res, segs) in paths.items():
        blocking = [s for s in segs if s["kind"] in ("recv", "wait")]
        assert blocking, mode
        for s in blocking:
            assert s.get("src") is not None, mode
        waits = [s for s in segs if s["kind"] == "wait"]
        assert any(s.get("origin") for s in waits), mode
