"""Cross-backend differential suite: coop scheduler vs thread oracle
vs the event-driven core.

The scheduler backend must be an *invisible* change: virtual time is
dataflow-determined (a recv completes at ``max(own clock, arrival)``,
a collective at ``max(participant clocks) + tree cost``), so per-rank
arrays, virtual clocks, and delivery statistics are bit-identical
whichever backend drives the ranks — under fault plans and under both
execution paths.  This suite enforces that for all three backends,
plus determinism of the schedulers themselves and the equivalence of
the communication-schedule cache.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.apps.adi import adi_source
from repro.apps.cg import cg_source
from repro.apps.dgefa import dgefa_source, make_dgefa_init
from repro.apps.stencil import stencil1d_source, stencil2d_source
from repro.apps.wave import wave_source
from repro.core.driver import compile_program
from repro.core.options import Mode, Options
from repro.machine import FaultPlan, Machine, resolve_scheduler

#: statistics that must not depend on the backend (wall-clock and the
#: scheduler counters themselves are exempt by definition)
STAT_FIELDS = (
    "messages", "bytes", "collectives", "collective_bytes",
    "remaps", "remap_bytes", "guards",
)

CASES = [
    ("stencil1d", stencil1d_source(128, 4), None),
    ("stencil2d", stencil2d_source(24, 2), None),
    ("adi", adi_source(32, 2), None),
    ("cg", cg_source(32, 4), None),
    ("dgefa", dgefa_source(16), make_dgefa_init(16)),
    ("wave", wave_source(64, 4), None),
]
SEEDS = [1, 2, 3]


def _chaos_plan(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, delay_prob=0.5, delay_max_us=80.0,
                     drop_prob=0.1, retry_timeout_us=50.0)


def _run(cp, init, scheduler, **kw):
    extra = {"init_fn": init} if init is not None else {}
    return cp.run(timeout_s=30.0, scheduler=scheduler, **extra, **kw)


def _assert_identical(a, b, label):
    """Arrays, per-rank virtual clocks, and delivery stats must match
    bit for bit."""
    assert a.stats.proc_times == b.stats.proc_times, label
    for f in STAT_FIELDS:
        assert getattr(a.stats, f) == getattr(b.stats, f), (label, f)
    for name in a.frames[0].arrays:
        for rk, (fa, fb) in enumerate(zip(a.frames, b.frames)):
            assert np.array_equal(
                fa.arrays[name].data, fb.arrays[name].data,
                equal_nan=True,
            ), f"{label}: array {name} differs on rank {rk}"


@pytest.mark.parametrize("vectorize", [False, True],
                         ids=["scalar", "vectorized"])
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "src,init", [c[1:] for c in CASES], ids=[c[0] for c in CASES]
)
def test_apps_bit_identical_across_backends(src, init, seed, vectorize):
    cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
    plan = _chaos_plan(seed)
    coop = _run(cp, init, "coop", faults=plan, vectorize=vectorize)
    threads = _run(cp, init, "threads", faults=plan, vectorize=vectorize)
    _assert_identical(coop, threads, f"seed={seed} vec={vectorize}")
    event = _run(cp, init, "event", faults=plan, vectorize=vectorize)
    _assert_identical(coop, event, f"event seed={seed} vec={vectorize}")
    assert coop.prints == event.prints


@pytest.mark.parametrize("mode", [Mode.INTER, Mode.RTR],
                         ids=["inter", "rtr"])
def test_modes_bit_identical_across_backends(mode):
    """RTR's element-grain messaging stresses the comm path hardest."""
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=mode))
    coop = _run(cp, None, "coop")
    _assert_identical(coop, _run(cp, None, "threads"), mode.value)
    _assert_identical(coop, _run(cp, None, "event"),
                      f"event {mode.value}")


@pytest.mark.parametrize("scheduler", ["coop", "event"])
def test_deterministic_backends_repeat_exactly(scheduler):
    """Two runs agree on everything including the scheduler's own
    counters — dispatch order is a pure function of (clock, rank)."""
    cp = compile_program(stencil1d_source(128, 4),
                         Options(nprocs=4, mode=Mode.INTER))
    a = _run(cp, None, scheduler, faults=_chaos_plan(1))
    b = _run(cp, None, scheduler, faults=_chaos_plan(1))
    _assert_identical(a, b, "repeat")
    assert a.stats.dispatches == b.stats.dispatches
    assert a.stats.switches == b.stats.switches


def test_comm_cache_equivalence(monkeypatch):
    """The communication-schedule cache is a pure memoization: results
    and statistics are identical with it disabled."""
    cp = compile_program(stencil1d_source(128, 4),
                         Options(nprocs=4, mode=Mode.INTER))
    cached = _run(cp, None, "coop")
    monkeypatch.setenv("REPRO_COMM_CACHE", "0")
    uncached = _run(cp, None, "coop")
    _assert_identical(cached, uncached, "comm-cache")
    assert cached.stats.comm_cache_hits > 0
    assert uncached.stats.comm_cache_hits == 0


def test_scheduler_stats_surface():
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    res = _run(cp, None, "coop")
    s = res.stats
    assert s.scheduler == "coop"
    assert s.wall_s > 0.0
    assert s.dispatches >= 4
    assert s.switches > 0
    line = s.sched_summary()
    assert "scheduler=coop" in line and "dispatches=" in line


def test_env_selects_backend(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    assert resolve_scheduler(None) == "coop"
    monkeypatch.setenv("REPRO_SCHEDULER", "threads")
    assert resolve_scheduler(None) == "threads"
    assert Machine(2).scheduler == "threads"
    monkeypatch.setenv("REPRO_SCHEDULER", "event")
    assert resolve_scheduler(None) == "event"
    assert Machine(2).scheduler == "event"
    # an explicit argument wins over the environment
    assert resolve_scheduler("coop") == "coop"
    assert Machine(2, scheduler="coop").scheduler == "coop"
    with pytest.raises(ValueError, match="unknown scheduler"):
        resolve_scheduler("fibers")


def test_cli_scheduler_flag(tmp_path, capsys):
    from repro.cli import main

    f = tmp_path / "prog.fd"
    f.write_text(stencil1d_source(64, 2))
    rc = main([str(f), "--run", "--no-text", "--report",
               "--scheduler", "coop"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scheduler=coop" in out
    rc = main([str(f), "--run", "--no-text", "--report",
               "--scheduler", "threads"])
    assert rc == 0
    assert "scheduler=threads" in capsys.readouterr().out
    rc = main([str(f), "--run", "--no-text", "--report",
               "--scheduler", "event"])
    assert rc == 0
    assert "scheduler=event" in capsys.readouterr().out
