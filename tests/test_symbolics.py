"""Unit tests for symbolic/constant analysis."""

from repro.analysis.symbolics import (
    Affine,
    affine_of,
    eval_const,
    eval_int,
    fold,
    free_vars,
    is_invariant,
    substitute,
)
from repro.lang import ast as A
from repro.lang import parse


def expr(text):
    """Parse an expression in a context where x is an array and other
    names are scalars (so intrinsics resolve to CallExpr)."""
    src = f"program t\nreal x(100)\nq = {text}\nend\n"
    return parse(src).main.body[0].expr


class TestEvalConst:
    def test_literals(self):
        assert eval_const(A.Num(5)) == 5
        assert eval_const(A.Num(2.5)) == 2.5

    def test_arith(self):
        assert eval_const(expr("2 + 3 * 4")) == 14
        assert eval_const(expr("(10 - 4) / 2")) == 3
        assert eval_const(expr("2 ** 10")) == 1024

    def test_env_lookup(self):
        assert eval_const(expr("n$proc * 25"), {"n$proc": 4}) == 100

    def test_unknown_var(self):
        assert eval_const(expr("n + 1")) is None

    def test_intrinsics(self):
        assert eval_const(expr("min(3, 7)")) == 3
        assert eval_const(expr("max(3, 7)")) == 7
        assert eval_const(expr("mod(10, 3)")) == 1
        assert eval_const(expr("abs(-4)")) == 4

    def test_integer_division_truncates_toward_zero(self):
        assert eval_const(expr("7 / 2")) == 3
        assert eval_const(expr("-7 / 2")) == -3

    def test_division_by_zero_is_none(self):
        assert eval_const(expr("1 / 0")) is None

    def test_eval_int_rejects_fractional(self):
        assert eval_int(expr("5 / 2.0")) is None
        assert eval_int(expr("4 / 2.0")) == 2


class TestSubstitute:
    def test_simple(self):
        e = substitute(expr("i + 5"), {"i": A.Var("j")})
        assert e == expr("j + 5")

    def test_formal_to_expression(self):
        e = substitute(expr("k + 1"), {"k": expr("m - 1")})
        assert e == A.BinOp("+", A.BinOp("-", A.Var("m"), A.Num(1)), A.Num(1))

    def test_array_subscripts(self):
        e = substitute(expr("x(i, j)"), {"i": A.Num(3)})
        assert e == A.ArrayRef("x", (A.Num(3), A.Var("j")))

    def test_untouched_names(self):
        e = expr("a + b")
        assert substitute(e, {"c": A.Num(1)}) == e


class TestFold:
    def test_full_fold(self):
        assert fold(expr("2 + 3")) == A.Num(5)

    def test_partial_fold(self):
        assert fold(expr("i + (2 + 3)")) == A.BinOp("+", A.Var("i"), A.Num(5))

    def test_identity_simplification(self):
        assert fold(expr("i + 0")) == A.Var("i")
        assert fold(expr("1 * i")) == A.Var("i")

    def test_with_env(self):
        assert fold(expr("n - 1"), {"n": 100}) == A.Num(99)


class TestAffine:
    def test_const(self):
        assert affine_of(expr("7")) == Affine(None, 7)

    def test_var(self):
        assert affine_of(expr("i")) == Affine("i", 0)

    def test_var_plus_const(self):
        assert affine_of(expr("i + 5")) == Affine("i", 5)
        assert affine_of(expr("i - 5")) == Affine("i", -5)
        assert affine_of(expr("5 + i")) == Affine("i", 5)

    def test_param_const(self):
        assert affine_of(expr("n - 1"), {"n": 10}) == Affine(None, 9)

    def test_nonaffine(self):
        assert affine_of(expr("i * 2")) is None
        assert affine_of(expr("i + j")) is None
        assert affine_of(expr("x(i)")) is None


class TestFreeVarsInvariance:
    def test_free_vars(self):
        assert free_vars(expr("x(i) + j * k")) == {"x", "i", "j", "k"}

    def test_invariant(self):
        assert is_invariant(expr("n + 1"), {"i", "j"})
        assert not is_invariant(expr("i + 1"), {"i", "j"})
