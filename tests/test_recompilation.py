"""Tests for recompilation analysis (§4, §8): separate compilation is
preserved — only procedures whose source or interprocedural inputs
changed are rebuilt."""

import numpy as np

from repro.apps import FIG1, stencil1d_source
from repro.core import Mode, Options
from repro.core.recompile import RecompilationManager
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import FREE


BASE = """
program p
real x(100)
distribute x(block)
call init(x)
call smooth(x)
end

subroutine init(x)
real x(100)
do i = 1, 100
  x(i) = i * 1.0
enddo
end

subroutine smooth(x)
real x(100)
do i = 1, 95
  x(i) = f(x(i + 5))
enddo
end
"""

#: same program, init's loop body changed (internal edit, same exports)
EDIT_LEAF = BASE.replace("x(i) = i * 1.0", "x(i) = i * 2.0")

#: main's distribution changed: everything downstream is affected
EDIT_DIST = BASE.replace("distribute x(block)", "distribute x(cyclic)")

#: smooth's shift distance changed: its exports (pending comm, overlap)
#: change, so main must recompile too — but init must not
EDIT_SHIFT = BASE.replace("x(i) = f(x(i + 5))", "x(i) = f(x(i + 3))")


def manager():
    return RecompilationManager(opts=Options(nprocs=4, mode=Mode.INTER))


class TestInitialCompilation:
    def test_everything_compiled_once(self):
        m = manager()
        m.compile(BASE)
        assert sorted(m.last_recompiled) == ["init", "p", "smooth"]
        assert m.last_reused == []

    def test_results_correct(self):
        m = manager()
        cp = m.compile(BASE)
        seq = run_sequential(parse(BASE)).arrays["x"].data
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("x"), seq)


class TestNoEdit:
    def test_recompile_nothing(self):
        m = manager()
        m.compile(BASE)
        m.compile(BASE)
        assert m.last_recompiled == []
        assert sorted(m.last_reused) == ["init", "p", "smooth"]

    def test_reused_build_still_runs(self):
        m = manager()
        m.compile(BASE)
        cp = m.compile(BASE)
        seq = run_sequential(parse(BASE)).arrays["x"].data
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("x"), seq)


class TestLeafInternalEdit:
    def test_only_leaf_recompiled(self):
        """init's body changed but its interface summary (exports) did
        not — callers keep their node code (§8's payoff)."""
        m = manager()
        m.compile(BASE)
        m.compile(EDIT_LEAF)
        assert m.last_recompiled == ["init"]
        assert sorted(m.last_reused) == ["p", "smooth"]

    def test_edited_build_correct(self):
        m = manager()
        m.compile(BASE)
        cp = m.compile(EDIT_LEAF)
        seq = run_sequential(parse(EDIT_LEAF)).arrays["x"].data
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("x"), seq)


class TestInterfaceChangingEdits:
    def test_distribution_change_recompiles_users(self):
        m = manager()
        m.compile(BASE)
        m.compile(EDIT_DIST)
        # main's source changed; init/smooth see a different reaching
        # decomposition -> all recompile
        assert sorted(m.last_recompiled) == ["init", "p", "smooth"]

    def test_export_change_propagates_to_callers(self):
        m = manager()
        m.compile(BASE)
        m.compile(EDIT_SHIFT)
        assert "smooth" in m.last_recompiled      # edited
        assert "p" in m.last_recompiled           # consumes its exports
        assert m.last_reused == ["init"]          # untouched

    def test_interface_edit_correct(self):
        m = manager()
        m.compile(BASE)
        cp = m.compile(EDIT_SHIFT)
        seq = run_sequential(parse(EDIT_SHIFT)).arrays["x"].data
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("x"), seq)


class TestAcrossManyEdits:
    def test_alternating_edits_stay_consistent(self):
        m = manager()
        for src in (BASE, EDIT_LEAF, BASE, EDIT_SHIFT, EDIT_LEAF):
            cp = m.compile(src)
            seq = run_sequential(parse(src)).arrays["x"].data
            res = cp.run(cost=FREE)
            assert np.allclose(res.gathered("x"), seq)

    def test_recompile_counts_bounded(self):
        """Across a session of leaf edits, total recompilations stay far
        below whole-program rebuilds."""
        m = manager()
        m.compile(BASE)
        total = 0
        for k in (3.0, 4.0, 5.0):
            edited = BASE.replace("x(i) = i * 1.0", f"x(i) = i * {k}")
            m.compile(edited)
            total += len(m.last_recompiled)
        assert total == 3  # one procedure per edit, not 9


class TestFigurePrograms:
    def test_fig1_under_manager_matches_driver(self):
        from repro.core import compile_program

        m = manager()
        cp1 = m.compile(FIG1)
        cp2 = compile_program(FIG1, Options(nprocs=4, mode=Mode.INTER))
        r1, r2 = cp1.run(cost=FREE), cp2.run(cost=FREE)
        assert np.allclose(r1.gathered("x"), r2.gathered("x"))
        assert r1.stats.messages == r2.stats.messages

    def test_stencil_session(self):
        m = manager()
        src = stencil1d_source(64, 2)
        m.compile(src)
        m.compile(src)
        assert m.last_recompiled == []
