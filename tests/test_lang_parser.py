"""Unit tests for the Fortran D parser."""

import pytest

from repro.lang import ParseError, parse, program_str
from repro.lang import ast as A


def parse_unit(body, header="program t", decls="real x(100)\ninteger i"):
    src = f"{header}\n{decls}\n{body}\nend\n"
    return parse(src).units[0]


class TestUnits:
    def test_program_unit(self):
        p = parse("program main\nx = 1\nend\n")
        assert p.main.name == "main"
        assert p.main.kind == "program"

    def test_subroutine_with_formals(self):
        p = parse("subroutine f(a, b, n)\na = b + n\nend\n")
        u = p.unit("f")
        assert u.kind == "subroutine"
        assert u.formals == ["a", "b", "n"]

    def test_subroutine_no_formals(self):
        p = parse("subroutine f\nx = 1\nend\n")
        assert p.unit("f").formals == []

    def test_typed_function(self):
        p = parse("integer function idamax(n, dx)\nidamax = n\nend\n")
        u = p.unit("idamax")
        assert u.kind == "function"
        assert u.result_type == "integer"

    def test_multiple_units(self):
        src = "program p\ncall f(x)\nend\n\nsubroutine f(y)\ny = 1\nend\n"
        p = parse(src)
        assert p.names() == ["p", "f"]

    def test_missing_end_raises(self):
        with pytest.raises(ParseError):
            parse("program p\nx = 1\n")


class TestDeclarations:
    def test_scalar_and_array_decls(self):
        u = parse_unit("x(1) = n", decls="real x(100)\ninteger n")
        assert u.decl("x").dims == [(A.ONE, A.Num(100))]
        assert u.decl("n").dims == []
        assert u.decl("n").type == "integer"

    def test_2d_array(self):
        u = parse_unit("x(1,2) = 0", decls="real x(100, 50)")
        assert u.decl("x").rank == 2

    def test_explicit_lower_bound(self):
        u = parse_unit("x(0) = 1", decls="real x(0:10)")
        assert u.decl("x").dims == [(A.Num(0), A.Num(10))]

    def test_symbolic_bounds(self):
        # parameterized overlaps, Figure 14
        src = "subroutine f(x, xlo, xhi)\nreal x(xlo:xhi)\nx(1) = 0\nend\n"
        u = parse(src).unit("f")
        assert u.decl("x").dims == [(A.Var("xlo"), A.Var("xhi"))]

    def test_parameter_statement(self):
        u = parse_unit("x(1) = n$proc", decls="real x(10)\nparameter (n$proc = 4)")
        assert u.param_value("n$proc") == A.Num(4)

    def test_double_precision(self):
        u = parse_unit("x(1) = 0", decls="double precision x(10)")
        assert u.decl("x").type == "real"

    def test_multiple_names_one_decl(self):
        u = parse_unit("a = b", decls="real a, b, c(5)")
        assert u.decl("a") and u.decl("b") and u.decl("c").rank == 1


class TestFortranD:
    def test_decomposition(self):
        u = parse_unit("continue", decls="real x(100)\ndecomposition d(100)")
        # decomposition is a body statement (executable context in our dialect)
        p = parse("program t\nreal x(100)\ndecomposition d(100, 50)\nend\n")
        d = p.main.body[0]
        assert isinstance(d, A.Decomposition)
        assert d.extents == [A.Num(100), A.Num(50)]

    def test_align(self):
        p = parse("program t\nreal y(4,4)\nalign y(i, j) with x(j, i)\nend\n")
        al = p.main.body[0]
        assert isinstance(al, A.Align)
        assert al.source_subs == ["i", "j"]
        assert al.target_subs == ["j", "i"]

    def test_distribute_block(self):
        p = parse("program t\nreal x(100)\ndistribute x(block)\nend\n")
        d = p.main.body[0]
        assert isinstance(d, A.Distribute)
        assert d.specs == [A.DistSpec("block")]

    def test_distribute_mixed(self):
        p = parse("program t\ndistribute d(block, :)\nend\n")
        assert p.main.body[0].specs == [A.DistSpec("block"), A.DistSpec("none")]

    def test_distribute_block_cyclic(self):
        p = parse("program t\ndistribute d(block_cyclic(8), :)\nend\n")
        assert p.main.body[0].specs[0] == A.DistSpec("block_cyclic", 8)

    def test_distribute_cyclic(self):
        p = parse("program t\ndistribute d(cyclic)\nend\n")
        assert p.main.body[0].specs == [A.DistSpec("cyclic")]


class TestStatements:
    def test_do_loop(self):
        u = parse_unit("do i = 1, 95\nx(i) = 0\nenddo")
        loop = u.body[0]
        assert isinstance(loop, A.Do)
        assert loop.var == "i"
        assert loop.lo == A.Num(1)
        assert loop.hi == A.Num(95)
        assert loop.step == A.ONE

    def test_do_loop_with_step(self):
        u = parse_unit("do i = 1, 100, 2\nx(i) = 0\nenddo")
        assert u.body[0].step == A.Num(2)

    def test_nested_do(self):
        u = parse_unit(
            "do i = 1, 10\ndo j = 1, 10\nx(i) = j\nenddo\nenddo"
        )
        outer = u.body[0]
        inner = outer.body[0]
        assert isinstance(inner, A.Do) and inner.var == "j"

    def test_block_if_else(self):
        u = parse_unit("if (i > 0) then\nx(1) = 1\nelse\nx(2) = 2\nendif")
        s = u.body[0]
        assert isinstance(s, A.If)
        assert len(s.then_body) == 1 and len(s.else_body) == 1

    def test_logical_if(self):
        u = parse_unit("if (i .gt. 0) x(1) = 1")
        s = u.body[0]
        assert isinstance(s, A.If) and not s.else_body

    def test_elseif_chains(self):
        u = parse_unit(
            "if (i > 0) then\nx(1) = 1\nelseif (i < 0) then\nx(2) = 2\n"
            "else\nx(3) = 3\nendif"
        )
        s = u.body[0]
        nested = s.else_body[0]
        assert isinstance(nested, A.If) and nested.else_body

    def test_call(self):
        u = parse_unit("call f1(x, i)")
        c = u.body[0]
        assert isinstance(c, A.Call)
        assert c.name == "f1" and len(c.args) == 2

    def test_statement_label(self):
        u = parse_unit("do i = 1, 9\ns1: x(i) = f(x(i+5))\nenddo")
        assert u.body[0].body[0].label == "s1"

    def test_return_stop_continue(self):
        u = parse_unit("continue\nreturn")
        assert isinstance(u.body[0], A.Continue)
        assert isinstance(u.body[1], A.Return)

    def test_do_while(self):
        u = parse_unit("do while (i < 10)\ni = i + 1\nenddo", decls="integer i")
        assert isinstance(u.body[0], A.DoWhile)

    def test_print(self):
        u = parse_unit("print *, 'v', x(1)")
        s = u.body[0]
        assert isinstance(s, A.Print) and len(s.items) == 2


class TestExpressions:
    def expr(self, text, decls="real x(100)\ninteger i, j"):
        u = parse_unit(f"i = {text}", decls=decls)
        return u.body[0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e == A.BinOp("+", A.Num(1), A.BinOp("*", A.Num(2), A.Num(3)))

    def test_power_right_assoc(self):
        e = self.expr("2 ** 3 ** 2")
        assert e == A.BinOp("**", A.Num(2), A.BinOp("**", A.Num(3), A.Num(2)))

    def test_unary_minus(self):
        assert self.expr("-i") == A.UnOp("-", A.Var("i"))

    def test_comparison_and_logic(self):
        e = self.expr("i > 0 .and. j < 5")
        assert isinstance(e, A.BinOp) and e.op == ".and."

    def test_array_ref_vs_function_call(self):
        e = self.expr("x(i) + f(j)")
        assert isinstance(e.left, A.ArrayRef)
        assert isinstance(e.right, A.CallExpr)

    def test_intrinsic_min(self):
        e = self.expr("min(i, 3)")
        assert e == A.CallExpr("min", (A.Var("i"), A.Num(3)))

    def test_parenthesized(self):
        e = self.expr("(1 + i) * 2")
        assert e == A.BinOp("*", A.BinOp("+", A.Num(1), A.Var("i")), A.Num(2))

    def test_user_function_resolved(self):
        src = (
            "program p\nreal x(10)\nx(1) = g2(x(2))\nend\n"
            "real function g2(v)\nreal v\ng2 = v * 2\nend\n"
        )
        p = parse(src)
        e = p.main.body[0].expr
        assert isinstance(e, A.CallExpr) and e.name == "g2"
        assert isinstance(e.args[0], A.ArrayRef)


class TestRoundTrip:
    """program -> text -> program must be stable (idempotent printing)."""

    SOURCES = [
        "program p\nreal x(100)\ndistribute x(block)\n"
        "do i = 1, 95\nx(i) = f(x(i + 5))\nenddo\nend\n",
        "subroutine f1(z, i)\nreal z(100, 100)\ncall f2(z, i)\nend\n",
        "program p\nif (a > 0) then\nb = 1\nelse\nb = 2\nendif\nend\n",
    ]

    @pytest.mark.parametrize("src", SOURCES)
    def test_roundtrip_stable(self, src):
        once = program_str(parse(src))
        twice = program_str(parse(once))
        assert once == twice
