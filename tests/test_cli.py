"""Tests for the fdc command-line driver."""

import numpy as np
import pytest

from repro.cli import main

FIG1 = """
program p1
real x(100)
distribute x(block)
do i = 1, 95
  x(i) = f(x(i + 5))
enddo
call f1(x)
end

subroutine f1(x)
real x(100)
do i = 1, 95
  x(i) = f(x(i + 5))
enddo
end
"""


@pytest.fixture
def src_file(tmp_path):
    p = tmp_path / "fig1.fd"
    p.write_text(FIG1)
    return str(p)


class TestCompileOnly:
    def test_prints_node_program(self, src_file, capsys):
        assert main([src_file]) == 0
        out = capsys.readouterr().out
        assert "my$p = myproc()" in out
        assert "send x(" in out

    def test_report(self, src_file, capsys):
        assert main([src_file, "--report", "--no-text"]) == 0
        out = capsys.readouterr().out
        assert "! dist p1.x: (block)" in out
        assert "! comm" in out

    def test_mode_rtr(self, src_file, capsys):
        assert main([src_file, "--mode", "rtr"]) == 0
        out = capsys.readouterr().out
        assert "owner(x(" in out

    def test_nprocs(self, src_file, capsys):
        assert main([src_file, "--nprocs", "8", "--report",
                     "--no-text"]) == 0
        assert "nprocs=8" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/path.fd"]) == 2

    def test_compile_error_reported(self, tmp_path, capsys):
        p = tmp_path / "bad.fd"
        p.write_text("program p\ncall missing(x)\nend\n")
        assert main([str(p)]) == 1
        assert "compilation failed" in capsys.readouterr().err


class TestRun:
    def test_run_and_verify(self, src_file, capsys):
        assert main([src_file, "--run", "--verify", "--no-text"]) == 0
        out = capsys.readouterr().out
        assert "! verify x: OK" in out
        assert "msgs=6" in out

    def test_gather_prints_array(self, src_file, capsys):
        assert main([src_file, "--run", "--gather", "x",
                     "--no-text"]) == 0
        assert "x = [" in capsys.readouterr().out

    def test_gather_unknown_array(self, src_file, capsys):
        assert main([src_file, "--run", "--gather", "zz",
                     "--no-text"]) == 2

    def test_cost_models(self, src_file, capsys):
        for cost in ("ipsc860", "fast", "free"):
            assert main([src_file, "--run", "--cost", cost,
                         "--no-text"]) == 0


class TestSequential:
    def test_sequential_summary(self, src_file, capsys):
        assert main([src_file, "--sequential"]) == 0
        out = capsys.readouterr().out
        assert "x: shape=(100,)" in out


class TestLocalize:
    def test_localized_view(self, src_file, capsys):
        assert main([src_file, "--localize", "f1", "--no-text"]) == 0
        out = capsys.readouterr().out
        assert "real x(30)" in out  # 25-block + 5 overlap (Figure 2)

    def test_unknown_procedure(self, src_file):
        assert main([src_file, "--localize", "nope", "--no-text"]) == 2


class TestExplain:
    def test_explain_narrative(self):
        from repro.apps import FIG4
        from repro.core import Options, compile_program

        text = compile_program(FIG4, Options(nprocs=4)).explain()
        assert "data partitioning:" in text
        assert "f1 -> f1, f1$1" in text
        assert "shift(5)" in text
        assert "overlap regions:" in text
