"""Chaos differential suite: seeded faults must not change results.

Delay jitter and drops-with-retransmit only move virtual arrival times —
the modeled transport is reliable, so under any eventually-delivering
fault plan the compiled applications must produce bit-identical per-rank
arrays and identical message/byte statistics to the fault-free run.
Only virtual clocks may differ.  Crash faults are the opposite contract:
the run must fail promptly with a clean :class:`SimulationError`, never
a hang, and never a leaked node thread.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.apps.adi import adi_source
from repro.apps.cg import cg_source
from repro.apps.dgefa import dgefa_source, make_dgefa_init
from repro.apps.stencil import stencil1d_source, stencil2d_source
from repro.apps.wave import wave_source
from repro.core.driver import compile_program
from repro.core.options import Mode, Options
from repro.machine import FaultPlan, SimulationError

#: delivery statistics that must be untouched by eventually-delivering
#: faults (clocks and the fault counters themselves are exempt)
STAT_FIELDS = (
    "messages", "bytes", "collectives", "collective_bytes",
    "remaps", "remap_bytes", "guards",
)

CASES = [
    ("stencil1d", stencil1d_source(128, 4), None),
    ("stencil2d", stencil2d_source(24, 2), None),
    ("adi", adi_source(32, 2), None),
    ("cg", cg_source(32, 4), None),
    ("dgefa", dgefa_source(16), make_dgefa_init(16)),
    ("wave", wave_source(64, 4), None),
]
SEEDS = [1, 2, 3]


def _chaos_plan(seed: int) -> FaultPlan:
    """Aggressive but eventually-delivering: half of all messages
    jittered, a tenth of transmissions dropped and retried."""
    return FaultPlan(seed=seed, delay_prob=0.5, delay_max_us=80.0,
                     drop_prob=0.1, retry_timeout_us=50.0)


def _run(cp, init, **kw):
    extra = {"init_fn": init} if init is not None else {}
    return cp.run(timeout_s=30.0, **extra, **kw)


def node_threads():
    return [t.name for t in threading.enumerate()
            if t.name.startswith("node-")]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "src,init", [c[1:] for c in CASES], ids=[c[0] for c in CASES]
)
def test_faulted_apps_bit_identical(src, init, seed):
    cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
    clean = _run(cp, init)
    chaos = _run(cp, init, faults=_chaos_plan(seed))
    for f in STAT_FIELDS:
        assert getattr(chaos.stats, f) == getattr(clean.stats, f), f
    for name in clean.frames[0].arrays:
        for rk, (fc, ff) in enumerate(zip(clean.frames, chaos.frames)):
            assert np.array_equal(
                fc.arrays[name].data, ff.arrays[name].data, equal_nan=True
            ), f"array {name} differs on rank {rk} under seed {seed}"


def test_chaos_run_is_reproducible():
    """Same program, same plan: clocks (not just results) identical."""
    cp = compile_program(stencil1d_source(128, 4),
                         Options(nprocs=4, mode=Mode.INTER))
    plan = _chaos_plan(1)
    a = _run(cp, None, faults=plan)
    b = _run(cp, None, faults=plan)
    assert a.stats.proc_times == b.stats.proc_times
    assert a.stats.faulted_messages == b.stats.faulted_messages
    assert a.stats.retransmits == b.stats.retransmits


def test_chaos_actually_perturbs_clocks():
    """The differential test is vacuous if no fault ever fires: under
    the chaos plan messages are faulted and virtual time stretches."""
    cp = compile_program(stencil1d_source(128, 4),
                         Options(nprocs=4, mode=Mode.INTER))
    clean = _run(cp, None)
    chaos = _run(cp, None, faults=_chaos_plan(1))
    assert chaos.stats.faulted_messages > 0
    assert chaos.stats.time_us > clean.stats.time_us
    assert clean.stats.faulted_messages == 0


def test_scalar_path_equally_immune():
    """The fault layer sits below the execution paths: the scalar
    interpreter under chaos must also match its own fault-free run (CI
    additionally runs the whole module under REPRO_VECTORIZE=0/1)."""
    cp = compile_program(stencil2d_source(24, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    clean = _run(cp, None, vectorize=False)
    chaos = _run(cp, None, vectorize=False, faults=_chaos_plan(2))
    for f in STAT_FIELDS:
        assert getattr(chaos.stats, f) == getattr(clean.stats, f), f
    for name in clean.frames[0].arrays:
        for fc, ff in zip(clean.frames, chaos.frames):
            assert np.array_equal(
                fc.arrays[name].data, ff.arrays[name].data, equal_nan=True
            )


@pytest.mark.parametrize("victim", [0, 2])
def test_crash_fault_fails_cleanly(victim):
    """A crash anywhere must surface as one clean SimulationError,
    quickly, with every node thread torn down."""
    cp = compile_program(stencil1d_source(128, 4),
                         Options(nprocs=4, mode=Mode.INTER))
    t0 = time.monotonic()
    with pytest.raises(SimulationError, match="injected crash"):
        _run(cp, None, faults=FaultPlan(crash_at={victim: 100.0}))
    assert time.monotonic() - t0 < 10.0
    assert not node_threads(), "leaked node threads after crash"


def test_crash_mid_computation_names_the_rank():
    cp = compile_program(cg_source(32, 4),
                         Options(nprocs=4, mode=Mode.INTER))
    with pytest.raises(SimulationError, match=r"rank 1"):
        _run(cp, None, faults=FaultPlan(crash_at={1: 500.0}))
    assert not node_threads()


def test_crash_beats_concurrent_chaos():
    """Crash + delays + drops together still ends in a clean error."""
    cp = compile_program(adi_source(32, 2),
                         Options(nprocs=4, mode=Mode.INTER))
    plan = FaultPlan(seed=2, delay_prob=0.5, delay_max_us=80.0,
                     drop_prob=0.1, retry_timeout_us=50.0,
                     crash_at={3: 200.0})
    with pytest.raises(SimulationError, match="injected crash"):
        _run(cp, None, faults=plan)
    assert not node_threads()
