"""Sampled-tracing tests.

``REPRO_TRACE_SAMPLE=<ranks>[:<events-per-rank>]`` must bound a trace
without corrupting it: sampling drops *whole* events, so every
surviving per-rank stream is an ordered subsequence of the unsampled
stream (clock monotonicity intact), the rank subset is deterministic
with endpoints kept, the drop count is surfaced, and the Chrome export
stays valid trace-event JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.apps.stencil import stencil1d_source
from repro.core.driver import compile_program
from repro.core.options import Mode, Options
from repro.obs import Tracer, chrome_trace, resolve_trace
from repro.obs.tracer import _parse_sample

SRC = stencil1d_source(64, 2)
OPTS = Options(nprocs=4, mode=Mode.INTER)


def _run(tracer):
    cp = compile_program(SRC, OPTS)
    cp.run(trace=tracer)
    return tracer


# ---------------------------------------------------------------------------
# spec parsing and rank selection
# ---------------------------------------------------------------------------


class TestSpec:
    @pytest.mark.parametrize("spec,expect", [
        ("4", (4, None)),
        ("4:100", (4, 100)),
        ("0", (None, None)),        # 0 = no limit
        ("2:0", (2, None)),
        (":", (None, None)),
        ("x:y", (None, None)),      # garbage degrades to unlimited
        ("1:1", (1, 1)),
    ])
    def test_parse(self, spec, expect):
        assert _parse_sample(spec) == expect

    def test_rank_subset_is_deterministic_with_endpoints(self):
        t = Tracer(sample="3")
        t.ensure_ranks(8)
        for r in range(8):
            t.rank_event(r, "net.send", 1.0)
        recorded = [r for r, evs in enumerate(t.rank_events) if evs]
        assert recorded[0] == 0 and recorded[-1] == 7  # endpoints kept
        assert len(recorded) == 3
        assert t.dropped_events == 5

    def test_single_rank_sample(self):
        t = Tracer(sample="1")
        t.ensure_ranks(4)
        for r in range(4):
            t.rank_event(r, "net.send", 1.0)
        assert [bool(evs) for evs in t.rank_events] == \
            [True, False, False, False]

    def test_event_budget_is_a_prefix(self):
        t = Tracer(sample="0:5")
        t.ensure_ranks(2)
        for i in range(10):
            t.rank_event(0, "net.send", float(i))
        assert [e["ts"] for e in t.rank_events[0]] == \
            [0.0, 1.0, 2.0, 3.0, 4.0]
        assert t.dropped_events == 5

    def test_no_sampling_below_rank_limit(self):
        t = Tracer(sample="8")
        t.ensure_ranks(4)  # fewer ranks than the limit: record all
        for r in range(4):
            t.rank_event(r, "net.send", 1.0)
        assert t.dropped_events == 0
        assert all(evs for evs in t.rank_events)


# ---------------------------------------------------------------------------
# end-to-end against a real run
# ---------------------------------------------------------------------------


class TestSampledRun:
    def test_sampled_stream_is_exact_subsequence(self):
        """Runs are bit-identical traced-vs-sampled, so a surviving
        rank's sampled stream must equal the full stream (no budget)
        or its prefix (with a budget) — event for event."""
        full = _run(Tracer(sample=False))
        sampled = _run(Tracer(sample="2"))
        budgeted = _run(Tracer(sample="2:10"))
        assert sampled.dropped_events > 0
        kept = [r for r, evs in enumerate(sampled.rank_events) if evs]
        assert kept == [0, 3]  # endpoints of 4 ranks
        for r in kept:
            assert sampled.rank_events[r] == full.rank_events[r]
            assert budgeted.rank_events[r] == full.rank_events[r][:10]
        total = sum(len(evs) for evs in full.rank_events)
        assert sampled.dropped_events == \
            total - sum(len(evs) for evs in sampled.rank_events)

    def test_per_rank_clocks_stay_monotone(self):
        tr = _run(Tracer(sample="2:16"))
        seen = 0
        for evs in tr.rank_events:
            last = -1.0
            for ev in evs:
                seen += 1
                assert ev["ts"] >= last
                last = ev["ts"]
        assert seen > 0

    def test_chrome_export_valid_and_reports_drops(self):
        tr = _run(Tracer(sample="1:8"))
        doc = json.loads(json.dumps(chrome_trace(tr), default=str))
        assert doc["traceEvents"]
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
        assert doc["otherData"]["dropped_events"] == tr.dropped_events
        assert doc["otherData"]["trace_sample"] == "1:8"
        assert tr.dropped_events > 0

    def test_env_var_enables_sampling(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "1:4")
        tr = resolve_trace(None)
        assert isinstance(tr, Tracer)
        _run(tr)
        assert tr.meta["trace_sample"] == "1:4"
        for r, evs in enumerate(tr.rank_events):
            assert len(evs) <= 4
            if r != 0:
                assert not evs
        assert tr.dropped_events > 0
