"""Tests for coarse-grain pipelining of carried-dependence recurrences
(x(i) = f(x(i-d)) over BLOCK distributions): wavefront execution with
one boundary message per neighbour pair."""

import numpy as np
import pytest

from repro.core import Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE, IPSC860


def recurrence_src(n=64, d=8, via_call=True):
    body = (
        f"do i = {d + 1}, {n}\n"
        f"x(i) = f(x(i - {d}))\n"
        f"enddo"
    )
    if via_call:
        return (
            f"program p\nreal x({n})\ndistribute x(block)\n"
            f"call g1(x)\nend\n"
            f"subroutine g1(x)\nreal x({n})\n{body}\nend\n"
        )
    return f"program p\nreal x({n})\ndistribute x(block)\n{body}\nend\n"


def check(src, P=4):
    seq = run_sequential(parse(src)).arrays["x"].data
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    res = cp.run(cost=FREE)
    assert np.allclose(res.gathered("x"), seq)
    return cp, res


class TestPipelineCorrectness:
    @pytest.mark.parametrize("d", [1, 3, 8, 15])
    def test_distances(self, d):
        check(recurrence_src(64, d))

    @pytest.mark.parametrize("P", [2, 3, 4, 6])
    def test_proc_counts(self, P):
        check(recurrence_src(60, 4), P=P)

    def test_direct_in_main(self):
        check(recurrence_src(48, 4, via_call=False))

    def test_one_message_per_pair(self):
        _cp, res = check(recurrence_src(64, 8))
        assert res.stats.messages == 3
        assert res.stats.bytes == 3 * 8 * 8

    def test_no_rtr_fallback(self):
        cp, _res = check(recurrence_src(64, 8))
        assert not cp.report.rtr_fallbacks


class TestPipelineShape:
    def test_recv_before_loop_send_after(self):
        cp, _ = check(recurrence_src(64, 8))
        g1 = cp.program.unit("g1")
        kinds = []
        for s in g1.body:
            if isinstance(s, A.SetMyProc):
                continue
            if isinstance(s, A.If):
                inner = s.then_body[0]
                kinds.append(type(inner).__name__.lower())
            else:
                kinds.append(type(s).__name__.lower())
        assert kinds == ["recv", "do", "send"]

    def test_wavefront_serializes_time(self):
        """The pipeline's makespan grows with P (each block waits for its
        left neighbour) — unlike the fully parallel forward shift."""
        src_fwd = (
            "program p\nreal x(64)\ndistribute x(block)\n"
            "do i = 1, 56\nx(i) = f(x(i + 8))\nenddo\nend\n"
        )
        cp_f = compile_program(src_fwd, Options(nprocs=4))
        t_fwd = cp_f.run(cost=IPSC860).stats.time_us
        cp_b = compile_program(recurrence_src(64, 8, via_call=False),
                               Options(nprocs=4))
        t_bwd = cp_b.run(cost=IPSC860).stats.time_us
        assert t_bwd > 1.5 * t_fwd  # serialization is visible

    def test_still_beats_rtr(self):
        src = recurrence_src(64, 8)
        seq = run_sequential(parse(src)).arrays["x"].data
        t = {}
        for mode in (Mode.INTER, Mode.RTR):
            cp = compile_program(src, Options(nprocs=4, mode=mode))
            res = cp.run(cost=IPSC860)
            assert np.allclose(res.gathered("x"), seq)
            t[mode] = res.stats.time_us
        assert t[Mode.INTER] < t[Mode.RTR] / 2


class TestNotPipelined:
    def test_cyclic_recurrence_falls_back(self):
        """Cyclic layout has no contiguous blocks to pipeline: run-time
        resolution keeps it correct."""
        src = (
            "program p\nreal x(32)\ndistribute x(cyclic)\n"
            "do i = 2, 32\nx(i) = f(x(i - 1))\nenddo\nend\n"
        )
        cp, _res = check(src)
        assert cp.report.rtr_fallbacks

    def test_cross_array_backward_shift_still_vectorizes(self):
        """y(i) = f(x(i-d)) has no carried dependence: the ordinary
        vectorized shift applies, not the pipeline."""
        src = (
            "program p\nreal x(64), y(64)\nalign y(i) with x(i)\n"
            "distribute x(block)\ncall g(x, y)\nend\n"
            "subroutine g(x, y)\nreal x(64), y(64)\n"
            "do i = 9, 64\ny(i) = f(x(i - 8))\nenddo\nend\n"
        )
        seq = run_sequential(parse(src)).arrays["y"].data
        cp = compile_program(src, Options(nprocs=4))
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("y"), seq)
        assert not any("pipeline" in l for l in cp.report.comm_placements)

    def test_distance_exceeding_block_falls_back(self):
        src = recurrence_src(32, 10)  # blocks of 8 < distance 10
        cp, _res = check(src)
        assert cp.report.rtr_fallbacks
