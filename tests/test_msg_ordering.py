"""Tests for message-run ordering (sends before receives) and the mixed
shift + pipeline interaction that motivated it."""

import time

import numpy as np
import pytest

from repro.core import Mode, Options, compile_program
from repro.core.codegen import order_sends_first
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE, SimulationError


class TestOrderSendsFirst:
    def mk_send(self, tag):
        return A.Send("x", [A.Num(1)], A.Num(0), tag)

    def mk_recv(self, tag):
        return A.Recv("x", [A.Num(1)], A.Num(0), tag)

    def test_sends_moved_ahead(self):
        stmts = [self.mk_recv(1), self.mk_send(2), self.mk_recv(3),
                 self.mk_send(4)]
        out = order_sends_first(stmts)
        kinds = ["send" if isinstance(s, A.Send) else "recv" for s in out]
        assert kinds == ["send", "send", "recv", "recv"]
        # stability within each class
        assert [s.tag for s in out] == [2, 4, 1, 3]

    def test_guarded_messages_ordered(self):
        g_send = A.If(A.BinOp(">", A.var("my$p"), A.Num(0)),
                      [self.mk_send(7)], [])
        g_recv = A.If(A.BinOp("<", A.var("my$p"), A.Num(3)),
                      [self.mk_recv(8)], [])
        out = order_sends_first([g_recv, g_send])
        assert out[0] is g_send

    def test_non_message_statements_break_runs(self):
        barrier = A.Remap("x", [A.DistSpec("cyclic")])
        stmts = [self.mk_recv(1), barrier, self.mk_send(2)]
        out = order_sends_first(stmts)
        # the remap separates the runs: the recv may not cross it
        assert isinstance(out[0], A.Recv)
        assert isinstance(out[1], A.Remap)
        assert isinstance(out[2], A.Send)

    def test_empty_and_pure_compute(self):
        assert order_sends_first([]) == []
        a = A.Assign(A.var("q"), A.Num(1))
        assert order_sends_first([a]) == [a]


class TestMixedShiftPipeline:
    """x(i) = a*x(i-1) + b*f(x(i+1)): a genuine carried dependence
    backward plus an anti-dependence forward in one statement — the
    pipeline and the vectorized shift must interleave without
    deadlock."""

    SRC = """
program p
real x(64)
distribute x(block)
call g(x)
end

subroutine g(x)
real x(64)
do i = 2, 63
  x(i) = 0.3 * x(i - 1) + 0.2 * f(x(i + 1))
enddo
end
"""

    def test_correct(self):
        seq = run_sequential(parse(self.SRC)).arrays["x"].data
        cp = compile_program(self.SRC, Options(nprocs=4, mode=Mode.INTER))
        res = cp.run(cost=FREE, timeout_s=30)
        assert np.allclose(res.gathered("x"), seq)

    def test_message_pattern(self):
        cp = compile_program(self.SRC, Options(nprocs=4, mode=Mode.INTER))
        res = cp.run(cost=FREE, timeout_s=30)
        # 3 prefetch messages (forward, hoisted to the caller) +
        # 3 wavefront boundary messages (pipeline, in the callee)
        assert res.stats.messages == 6

    def test_pipeline_in_callee_prefetch_in_caller(self):
        cp = compile_program(self.SRC, Options(nprocs=4, mode=Mode.INTER))
        g = cp.program.unit("g")
        g_msgs = [s for s in A.walk_stmts(g.body)
                  if isinstance(s, (A.Send, A.Recv))]
        assert len(g_msgs) == 2  # the wavefront pair only
        main_msgs = [s for s in A.walk_stmts(cp.program.main.body)
                     if isinstance(s, (A.Send, A.Recv))]
        assert len(main_msgs) == 2  # the hoisted prefetch pair


class TestMiscompiledMessagesDiagnosed:
    """A message-ordering bug in a compiled node program must be
    diagnosed instantly by the wait-for graph — through the full
    interpreter stack, not just the raw Machine API."""

    def _break_and_run(self, mutate):
        cp = compile_program(TestMixedShiftPipeline.SRC,
                             Options(nprocs=4, mode=Mode.INTER))
        msgs = [s for s in A.walk_stmts(cp.program.unit("g").body)
                if isinstance(s, (A.Send, A.Recv))]
        mutate(msgs)
        t0 = time.monotonic()
        with pytest.raises(SimulationError) as ei:
            cp.run(cost=FREE, timeout_s=60)
        assert time.monotonic() - t0 < 1.0, "diagnosis was not instant"
        assert ei.value.report is not None
        return ei.value.report

    def test_wrong_recv_tag(self):
        def mutate(msgs):
            recv = next(s for s in msgs if isinstance(s, A.Recv))
            recv.tag += 971  # nobody sends this tag

        rep = self._break_and_run(mutate)
        assert rep.blocked_ranks
        # the orphaned wavefront message shows up as pending traffic
        assert any(rep.pending.values())

    def test_deleted_send(self):
        """Dropping the wavefront send leaves its receivers stranded;
        the report names them and their awaited keys."""
        cp = compile_program(TestMixedShiftPipeline.SRC,
                             Options(nprocs=4, mode=Mode.INTER))
        g = cp.program.unit("g")

        def strip_sends(stmts):
            out = []
            for s in stmts:
                if isinstance(s, A.Send):
                    continue
                if isinstance(s, A.If):
                    s.then_body = strip_sends(s.then_body)
                    s.else_body = strip_sends(s.else_body)
                elif isinstance(s, A.Do):
                    s.body = strip_sends(s.body)
                out.append(s)
            return out

        g.body = strip_sends(g.body)
        t0 = time.monotonic()
        with pytest.raises(SimulationError) as ei:
            cp.run(cost=FREE, timeout_s=60)
        assert time.monotonic() - t0 < 1.0
        rep = ei.value.report
        assert rep is not None
        assert rep.blocked_ranks
        assert all(isinstance(rep.awaited[r], tuple)
                   for r in rep.blocked_ranks)


class TestRedBlackStaysSafe:
    def test_stride2_not_pipelined(self):
        """Stride-2 sweeps have disjoint read/write parity: no pipeline
        (regression test for the red-black deadlock)."""
        src = (
            "program p\nreal x(64)\ndistribute x(block)\n"
            "do i = 1, 64\nx(i) = i * 1.0\nenddo\n"
            "do i = 2, 63, 2\nx(i) = 0.5 * (x(i - 1) + x(i + 1))\nenddo\n"
            "end\n"
        )
        seq = run_sequential(parse(src)).arrays["x"].data
        cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
        res = cp.run(cost=FREE, timeout_s=30)
        assert np.allclose(res.gathered("x"), seq)
        assert not any("pipeline" in l for l in cp.report.comm_placements)
