"""RTR-demotion coverage ratchet across the full application suite.

``report.rtr_demotions`` records every procedure the driver silently
downgraded to run-time resolution.  The paper apps compile cleanly —
zero demotions in every mode and under every distribution kind the
auto-tuner emits — and this file ratchets exactly those counts: any
change that starts demoting (or stops being able to analyze) one of
the apps fails here with the app and mode in the test id, rather than
surfacing as a mysterious slowdown in the benchmarks.

If a future change legitimately alters a count, update the table — the
point is that the change is *loud*.
"""

import pytest

from repro.apps.adi import adi_source
from repro.apps.cg import cg_source
from repro.apps.dgefa import dgefa_source
from repro.apps.stencil import stencil1d_source, stencil2d_source
from repro.apps.wave import wave_source
from repro.core import Mode, Options, compile_program, \
    parse_distribute_args

#: app -> (source, expected rtr_demotions count) — the ratchet table
APPS = {
    "stencil1d": (lambda: stencil1d_source(64, 4), 0),
    "stencil2d": (lambda: stencil2d_source(16, 2), 0),
    "adi": (lambda: adi_source(16, 2), 0),
    "cg": (lambda: cg_source(32, 4), 0),
    "dgefa": (lambda: dgefa_source(16), 0),
    "wave": (lambda: wave_source(64, 4), 0),
}

#: the demoting program from test_rtr_demotion.py, pinned here as the
#: positive control: exactly one demotion, always
DEMOTING_SRC = """
program p
real x(16), y(16)
align y(i) with x(i)
distribute x(block)
do i = 1, 16
  x(i) = i * 1.0
  y(i) = 0.0
enddo
call shade(x, y)
end

subroutine shade(x, y)
real x(16), y(16)
do i = 2, 16
  if (x(i - 1) > 3.0) then
    y(i) = 1.0
  endif
enddo
end
"""


class TestRatchetPerMode:
    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize("mode", [Mode.INTER, Mode.INTRA, Mode.RTR])
    def test_app_demotion_count(self, app, mode):
        make, expected = APPS[app]
        cp = compile_program(make(), Options(nprocs=4, mode=mode))
        assert len(cp.report.rtr_demotions) == expected, (
            f"{app} [{mode.value}] rtr_demotions changed: "
            f"{cp.report.rtr_demotions}"
        )


class TestRatchetUnderTunerKinds:
    """The kinds the auto-tuner emits must not trip demotions either —
    a plan that silently demoted a procedure would be scored on RTR
    communication and win or lose for the wrong reason."""

    #: app -> override naming its primary DISTRIBUTE target
    KIND_CASES = {
        "stencil1d": ("x", lambda: stencil1d_source(64, 4)),
        "cg": ("x", lambda: cg_source(32, 4)),
        "dgefa": ("a", lambda: dgefa_source(16)),
    }

    @pytest.mark.parametrize("app", sorted(KIND_CASES))
    @pytest.mark.parametrize(
        "kind", ["block", "cyclic", "block_cyclic:4"]
    )
    def test_kind_override_keeps_zero_demotions(self, app, kind):
        target, make = self.KIND_CASES[app]
        opts = Options(
            nprocs=4,
            distribute=parse_distribute_args([f"{target}={kind}"]),
        )
        cp = compile_program(make(), opts)
        assert cp.report.rtr_demotions == []


class TestRatchetPositiveControl:
    def test_demoting_program_counts_exactly_one(self):
        cp = compile_program(DEMOTING_SRC,
                             Options(nprocs=4, mode=Mode.INTER))
        assert len(cp.report.rtr_demotions) == 1
        assert cp.report.rtr_demotions[0].startswith("shade:")
