"""Unit + property tests for the Regular Section Descriptor algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.rsd import (
    EMPTY_RANGE,
    RSD,
    Range,
    SymDim,
    merge_rsd_list,
    rsd,
    subs_to_rsd,
)
from repro.lang import ast as A


class TestRange:
    def test_count(self):
        assert Range(1, 10).count == 10
        assert Range(1, 10, 3).count == 4
        assert Range(5, 5).count == 1
        assert EMPTY_RANGE.count == 0

    def test_contains(self):
        r = Range(2, 10, 2)
        assert r.contains(4) and r.contains(10)
        assert not r.contains(5) and not r.contains(12)

    def test_contains_range(self):
        assert Range(1, 100).contains_range(Range(5, 10))
        assert not Range(1, 100).contains_range(Range(50, 150))
        assert Range(1, 99, 2).contains_range(Range(3, 9, 2))
        assert not Range(1, 99, 2).contains_range(Range(2, 8, 2))

    def test_shift(self):
        assert Range(1, 25).shift(5) == Range(6, 30)

    def test_intersect_unit_steps(self):
        assert Range(6, 30).intersect(Range(1, 25)) == Range(6, 25)
        assert Range(1, 5).intersect(Range(10, 20)).empty

    def test_intersect_strided(self):
        # evens ∩ multiples of 3 in [1,30] = multiples of 6
        a, b = Range(2, 30, 2), Range(3, 30, 3)
        got = a.intersect(b)
        assert got == Range(6, 30, 6)

    def test_intersect_incompatible_phase(self):
        assert Range(1, 99, 4).intersect(Range(3, 99, 4)).empty

    def test_subtract_middle(self):
        out = Range(1, 10).subtract(Range(4, 6))
        assert out == [Range(1, 3), Range(7, 10)]

    def test_subtract_prefix_suffix(self):
        assert Range(6, 30).subtract(Range(1, 25)) == [Range(26, 30)]
        assert Range(1, 25).subtract(Range(6, 30)) == [Range(1, 5)]

    def test_subtract_disjoint_and_covering(self):
        assert Range(1, 5).subtract(Range(10, 20)) == [Range(1, 5)]
        assert Range(4, 6).subtract(Range(1, 10)) == []

    def test_union_merge_adjacent(self):
        assert Range(1, 5).union_merge(Range(6, 10)) == Range(1, 10)
        assert Range(1, 5).union_merge(Range(7, 10)) is None

    def test_union_merge_same_stride(self):
        assert Range(1, 9, 2).union_merge(Range(11, 19, 2)) == Range(1, 19, 2)

    def test_union_merge_containment(self):
        assert Range(1, 100).union_merge(Range(5, 10)) == Range(1, 100)

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            Range(1, 10, 0)


ranges = st.builds(
    Range,
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=80),
    st.integers(min_value=1, max_value=7),
)


class TestRangeProperties:
    @given(ranges, ranges)
    @settings(max_examples=300)
    def test_intersect_is_exact(self, a, b):
        got = a.intersect(b)
        expect = sorted(set(a.iter()) & set(b.iter()))
        assert sorted(got.iter()) == expect

    @given(ranges, ranges)
    @settings(max_examples=300)
    def test_subtract_is_exact_or_conservative(self, a, b):
        got = a.subtract(b)
        members = sorted(x for r in got for x in r.iter())
        expect = sorted(set(a.iter()) - set(b.iter()))
        if a.count <= 4096:  # exact regime
            assert members == expect
        else:  # conservative over-approximation allowed
            assert set(expect) <= set(members)

    @given(ranges, ranges)
    @settings(max_examples=300)
    def test_union_merge_sound(self, a, b):
        m = a.union_merge(b)
        if m is not None:
            assert set(m.iter()) == set(a.iter()) | set(b.iter())

    @given(ranges, st.integers(min_value=-20, max_value=20))
    def test_shift_roundtrip(self, a, off):
        assert a.shift(off).shift(-off) == a

    @given(ranges)
    def test_normalized_same_members(self, a):
        assert list(a.normalized().iter()) == list(a.iter())


class TestRSD:
    def test_constructor_forms(self):
        s = rsd((1, 25), (1, 100))
        assert s.rank == 2 and s.count == 2500
        assert str(rsd(5, (6, 30))) == "[5, 6:30]"
        assert str(rsd((1, 99, 2))) == "[1:99:2]"

    def test_paper_fig2_nonlocal_set(self):
        # accessed [6:30] minus local [1:25] = nonlocal [26:30]
        accessed, local = rsd((6, 30)), rsd((1, 25))
        assert accessed.subtract(local) == [rsd((26, 30))]

    def test_2d_subtract(self):
        accessed = rsd((6, 30), (1, 100))
        local = rsd((1, 25), (1, 100))
        assert accessed.subtract(local) == [rsd((26, 30), (1, 100))]

    def test_subtract_multi_axis(self):
        a = rsd((1, 4), (1, 4))
        b = rsd((2, 3), (2, 3))
        pieces = a.subtract(b)
        total = sum(p.count for p in pieces)
        assert total == 16 - 4
        # disjointness
        seen = set()
        for p in pieces:
            for i in p.dims[0].iter():
                for j in p.dims[1].iter():
                    assert (i, j) not in seen
                    seen.add((i, j))

    def test_contains(self):
        assert rsd((1, 100)).contains(rsd((26, 30)))
        assert not rsd((1, 25)).contains(rsd((26, 30)))

    def test_intersect(self):
        got = rsd((6, 30), (1, 100)).intersect(rsd((1, 25), (1, 50)))
        assert got == rsd((6, 25), (1, 50))

    def test_shift(self):
        assert rsd((1, 25)).shift(0, 5) == rsd((6, 30))

    def test_symbolic_dim_structural_equality(self):
        i = A.Var("i")
        a = RSD((Range(26, 30), SymDim(i)))
        b = RSD((Range(26, 30), SymDim(i)))
        assert a == b
        assert str(a) == "[26:30, i]"

    def test_symbolic_subtract_conservative(self):
        i = A.Var("i")
        a = RSD((Range(1, 10), SymDim(i)))
        b = RSD((Range(1, 10), SymDim(A.Var("j"))))
        assert a.subtract(b) == [a]

    def test_merge_single_axis(self):
        a = rsd((26, 30), (1, 50))
        b = rsd((26, 30), (51, 100))
        assert a.merge(b) == rsd((26, 30), (1, 100))

    def test_merge_refused_two_axes(self):
        a = rsd((1, 5), (1, 50))
        b = rsd((6, 10), (51, 100))
        assert a.merge(b) is None

    def test_merge_rsd_list_coalesces_paper_example(self):
        # the j-loop instances X[26:30, j] for j = 1..100 coalesce into one
        pieces = [rsd((26, 30), j) for j in range(1, 101)]
        merged = merge_rsd_list(pieces)
        assert merged == [rsd((26, 30), (1, 100))]

    def test_empty_handling(self):
        assert rsd(EMPTY_RANGE).empty
        assert rsd((1, 10)).subtract(rsd((1, 10))) == []

    def test_to_subs_roundtrip(self):
        s = rsd((26, 30), 7, (1, 99, 2))
        back = subs_to_rsd(s.to_subs())
        assert back == s

    def test_subs_to_rsd_symbolic(self):
        out = subs_to_rsd([A.Var("i"), A.Triplet(A.Num(1), A.Num(10), None)])
        assert isinstance(out.dims[0], SymDim)
        assert out.dims[1] == Range(1, 10)


dims2 = st.tuples(ranges, ranges).map(lambda t: RSD(t))


class TestRSDProperties:
    @given(dims2, dims2)
    @settings(max_examples=200)
    def test_subtract_sound_2d(self, a, b):
        def members(s):
            return {
                (i, j)
                for i in s.dims[0].iter()
                for j in s.dims[1].iter()
            }

        got = set()
        for p in a.subtract(b):
            got |= members(p)
        assert members(a) - members(b) <= got
        assert got <= members(a)

    @given(dims2, dims2)
    @settings(max_examples=200)
    def test_merge_sound(self, a, b):
        m = a.merge(b)
        if m is None:
            return

        def members(s):
            if s.empty:
                return set()
            return {
                (i, j)
                for i in s.dims[0].iter()
                for j in s.dims[1].iter()
            }

        assert members(m) == members(a) | members(b)
