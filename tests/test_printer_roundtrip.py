"""Property-based round-trip tests for the printer/parser pair: randomly
generated ASTs print to text that parses back to the same AST."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast as A
from repro.lang import parse, program_str

# -- expression generator -----------------------------------------------

names = st.sampled_from(["a", "b", "c", "i", "j", "k", "n"])


def exprs(max_depth=3):
    base = st.one_of(
        st.integers(min_value=0, max_value=999).map(A.Num),
        names.map(A.Var),
    )

    def extend(children):
        binops = st.sampled_from(["+", "-", "*", "/", "**"])
        cmps = st.sampled_from(["==", "/=", "<", "<=", ">", ">="])
        return st.one_of(
            st.builds(A.BinOp, binops, children, children),
            st.builds(lambda x: A.UnOp("-", x), children),
            st.builds(
                lambda a, b: A.CallExpr("min", (a, b)), children, children
            ),
            st.builds(
                lambda s: A.ArrayRef("x", (s,)), children
            ),
        )

    return st.recursive(base, extend, max_leaves=8)


arith_exprs = exprs()
cond_exprs = st.builds(
    A.BinOp, st.sampled_from(["==", "<", "<=", ">", ">="]),
    arith_exprs, arith_exprs,
)

# -- statement generator ---------------------------------------------------


def stmts(depth=0):
    assign = st.builds(
        A.Assign,
        st.one_of(
            names.map(A.Var),
            st.builds(lambda s: A.ArrayRef("x", (s,)), arith_exprs),
        ),
        arith_exprs,
    )
    if depth >= 2:
        return assign
    inner = st.lists(stmts(depth + 1), min_size=1, max_size=3)
    loop = st.builds(
        lambda v, lo, hi, body: A.Do(v, lo, hi, A.ONE, body),
        st.sampled_from(["i", "j", "k"]),
        arith_exprs,
        arith_exprs,
        inner,
    )
    branch = st.builds(
        lambda c, t, e: A.If(c, t, e),
        cond_exprs,
        inner,
        st.one_of(st.just([]), inner),
    )
    return st.one_of(assign, loop, branch)


programs = st.lists(stmts(), min_size=1, max_size=5).map(
    lambda body: A.Program([
        A.Procedure(
            "program", "p", [],
            [A.Decl("real", "x", [(A.ONE, A.Num(100))])],
            [], body,
        )
    ])
)


@given(programs)
@settings(max_examples=150, deadline=None)
def test_print_parse_roundtrip(prog):
    text = program_str(prog)
    back = parse(text)
    assert program_str(back) == text
    assert back.main.body == prog.main.body


@given(arith_exprs)
@settings(max_examples=300, deadline=None)
def test_expression_precedence_preserved(e):
    """Printing then parsing an expression yields the same tree — the
    printer's parenthesization matches the parser's precedence."""
    prog = A.Program([
        A.Procedure("program", "p", [],
                    [A.Decl("real", "x", [(A.ONE, A.Num(100))])],
                    [], [A.Assign(A.Var("q"), e)]),
    ])
    back = parse(program_str(prog))
    assert back.main.body[0].expr == e


@given(st.lists(st.sampled_from(["block", "cyclic", "none"]),
                min_size=1, max_size=3))
@settings(max_examples=100, deadline=None)
def test_distribute_roundtrip(kinds):
    spec_txt = ", ".join(":" if k == "none" else k for k in kinds)
    dims = ", ".join("8" for _ in kinds)
    src = f"program p\nreal x({dims})\ndistribute x({spec_txt})\nend\n"
    prog = parse(src)
    assert program_str(parse(program_str(prog))) == program_str(prog)
