"""Tests for distributed-array reads in branch conditions: the
pivot-search pattern (hoisted column broadcast + replicated comparison)
and the element-broadcast fallback."""

import numpy as np
import pytest

from repro.core import CompileError, Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE


def check(src, scalars=(), arrays=(), P=4, mode=Mode.INTER):
    seq = run_sequential(parse(src))
    cp = compile_program(src, Options(nprocs=P, mode=mode))
    res = cp.run(cost=FREE, timeout_s=60)
    for name in arrays:
        assert np.allclose(res.gathered(name), seq.arrays[name].data)
    for name in scalars:
        for fr in res.frames:
            assert fr.scalars[name] == pytest.approx(seq.scalars[name])
    return cp, res


class TestPivotSearchPattern:
    SRC = """
program p
real a(16, 16)
distribute a(:, cyclic)
do j = 1, 16
do i = 1, 16
  a(i, j) = abs(8.5 - i) + 0.1 * j
enddo
enddo
k = 3
big = 0.0
l = k
do i = k, 16
  if (abs(a(i, k)) > big) then
    big = abs(a(i, k))
    l = i
  endif
enddo
end
"""

    def test_argmax_replicated(self):
        check(self.SRC, scalars=("l", "big"))

    def test_single_column_broadcast(self):
        cp, res = check(self.SRC, scalars=("l",))
        assert res.stats.collectives == 1  # one hoisted column bcast
        assert res.stats.messages == 0

    def test_bcast_before_search_loop(self):
        cp, _ = check(self.SRC, scalars=("l",))
        body = cp.program.main.body
        kinds = [type(s).__name__ for s in body]
        assert kinds.index("Bcast") < len(kinds) - 1
        # the broadcast immediately precedes the search loop
        b = kinds.index("Bcast")
        assert kinds[b + 1] == "Do"

    def test_search_inside_k_loop(self):
        """When the searched column index is a loop variable, the
        broadcast stays inside that loop (one per k)."""
        src = """
program p
real a(12, 12)
distribute a(:, cyclic)
do j = 1, 12
do i = 1, 12
  a(i, j) = abs(6.5 - i) + 0.1 * j
enddo
enddo
s = 0.0
do k = 1, 12
  big = 0.0
  do i = k, 12
    if (abs(a(i, k)) > big) then
      big = abs(a(i, k))
    endif
  enddo
  s = s + big
enddo
end
"""
        cp, res = check(src, scalars=("s",))
        assert res.stats.collectives == 12  # one bcast per k


class TestElementFallback:
    def test_loop_var_condition_read_element_bcasts(self):
        """A condition reading x(i) over the distributed dimension
        cannot hoist: per-element broadcasts keep it correct."""
        src = """
program p
real x(12)
distribute x(block)
do i = 1, 12
  x(i) = abs(6.5 - i)
enddo
nbig = 0
do i = 1, 12
  if (x(i) > 3.0) then
    nbig = nbig + 1
  endif
enddo
end
"""
        cp, res = check(src, scalars=("nbig",))
        assert res.stats.collectives >= 12  # element broadcasts

    def test_rtr_mode_also_correct(self):
        src = """
program p
real x(8)
distribute x(cyclic)
do i = 1, 8
  x(i) = i * 1.0
enddo
hit = 0.0
if (x(5) > 4.0) then
  hit = 1.0
endif
end
"""
        for mode in (Mode.INTER, Mode.RTR):
            check(src, scalars=("hit",), mode=mode)

    PARTITIONED_COND_SRC = """
program p
real x(16), y(16)
align y(i) with x(i)
distribute x(block)
do i = 1, 16
  x(i) = i * 1.0
enddo
do i = 2, 16
  if (x(i - 1) > 3.0) then
    y(i) = 1.0
  endif
enddo
end
"""

    def test_partitioned_context_rejected_under_strict(self):
        """A condition reading distributed data *inside a partitioned
        loop* cannot be compiled (the broadcast would desynchronize):
        under strict=True the compiler says so instead of
        miscompiling."""
        with pytest.raises(CompileError, match="branch condition"):
            compile_program(
                self.PARTITIONED_COND_SRC,
                Options(nprocs=4, mode=Mode.INTER, strict=True),
            )

    def test_partitioned_context_demoted_by_default(self):
        """Without strict, the same program compiles: the offending
        procedure is demoted to run-time resolution (the paper's
        fallback) and the result still matches the oracle."""
        cp, _ = check(self.PARTITIONED_COND_SRC, arrays=("x", "y"))
        assert cp.report.rtr_demotions
        assert "branch condition" in cp.report.rtr_demotions[0]
        assert "demoted to run-time resolution" in cp.explain()


class TestNestedRewrites:
    def test_assign_inside_distributed_cond_if(self):
        """Statements nested in a rewritten branch still get their own
        run-time resolution (regression: broadcasts used to replace the
        If wholesale, skipping the nested rewrites)."""
        src = """
program p
real x(8)
distribute x(cyclic)
do i = 1, 8
  x(i) = i * 2.0
enddo
if (x(5) > 4.0) then
  x(2) = x(7) * 10.0
endif
end
"""
        for mode in (Mode.RTR, Mode.INTER, Mode.INTRA):
            check(src, arrays=("x",), mode=mode)

    def test_else_branch_too(self):
        src = """
program p
real x(8)
distribute x(cyclic)
do i = 1, 8
  x(i) = i * 2.0
enddo
if (x(5) > 99.0) then
  x(2) = 0.0
else
  x(3) = x(6) + 1.0
endif
end
"""
        for mode in (Mode.RTR, Mode.INTER):
            check(src, arrays=("x",), mode=mode)
