"""Soundness of the dependence analyzer against a brute-force oracle.

For random small loop nests and affine accesses, enumerate every
(write-iteration, read-iteration) pair, check element overlap and
execution order exactly, and verify that :func:`true_dependence` never
returns ``None`` when a true dependence actually exists (conservative
analyses may report spurious dependences, never miss real ones), and
that reported carried levels cover the real ones.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dependence import DimAccess, true_dependence
from repro.callgraph.acg import LoopInfo
from repro.lang import ast as A


def loop(var, lo, hi, depth):
    return LoopInfo(var, A.Num(lo), A.Num(hi), A.ONE,
                    A.Do(var, A.Num(lo), A.Num(hi), A.ONE, []), depth)


def eval_access(acc: DimAccess, iters: dict[str, int], bound: int):
    """Set of elements this descriptor touches for one iteration point
    (ranges truncated at *bound* to keep the oracle finite)."""
    if acc.kind == "const":
        return {acc.value}
    if acc.kind == "var":
        return {iters[acc.var] + acc.off}
    if acc.kind == "range":
        return set(range(acc.lo, acc.hi + 1))
    if acc.kind == "symrange":
        return set(range(iters[acc.var] + acc.off, bound + 1))
    raise AssertionError(acc.kind)


def brute_force_true_dep(wdims, rdims, loops, w_before_r, bound=12):
    """Exact ground truth: levels carrying a true dep + loop-indep."""
    spaces = [range(lo, hi + 1) for lo, hi in loops]
    carried = set()
    loopindep = False
    names = [f"v{k}" for k in range(len(loops))]
    for w_iter in itertools.product(*spaces):
        wenv = dict(zip(names, w_iter))
        welems = [eval_access(d, wenv, bound) for d in wdims]
        for r_iter in itertools.product(*spaces):
            renv = dict(zip(names, r_iter))
            overlap = all(
                welems[i] & eval_access(rdims[i], renv, bound)
                for i in range(len(wdims))
            )
            if not overlap:
                continue
            if w_iter == r_iter:
                if w_before_r:
                    loopindep = True
            elif w_iter < r_iter:  # lexicographic: write first
                for lvl, (wv, rv) in enumerate(zip(w_iter, r_iter), 1):
                    if wv != rv:
                        carried.add(lvl)
                        break
    return carried, loopindep


dim_access = st.one_of(
    st.integers(min_value=1, max_value=8).map(DimAccess.const),
    st.tuples(st.sampled_from(["v0", "v1"]),
              st.integers(min_value=-2, max_value=2)).map(
        lambda t: DimAccess.point(*t)),
    st.tuples(st.integers(min_value=1, max_value=4),
              st.integers(min_value=4, max_value=8)).map(
        lambda t: DimAccess.num_range(*t)),
    st.tuples(st.sampled_from(["v0", "v1"]),
              st.integers(min_value=0, max_value=2)).map(
        lambda t: DimAccess.sym_range(*t)),
)


@st.composite
def dep_case(draw):
    nloops = draw(st.integers(min_value=1, max_value=2))
    bounds = [
        (draw(st.integers(min_value=1, max_value=3)),
         draw(st.integers(min_value=3, max_value=6)))
        for _ in range(nloops)
    ]
    rank = draw(st.integers(min_value=1, max_value=2))

    def usable(acc):
        return acc.var is None or int(acc.var[1]) < nloops

    wdims = [draw(dim_access.filter(usable)) for _ in range(rank)]
    rdims = [draw(dim_access.filter(usable)) for _ in range(rank)]
    w_before_r = draw(st.booleans())
    return wdims, rdims, bounds, w_before_r


@given(dep_case())
@settings(max_examples=400, deadline=None)
def test_analysis_never_misses_a_dependence(case):
    wdims, rdims, bounds, w_before_r = case
    loops = [loop(f"v{k}", lo, hi, k + 1)
             for k, (lo, hi) in enumerate(bounds)]
    truth_carried, truth_indep = brute_force_true_dep(
        wdims, rdims, bounds, w_before_r
    )
    result = true_dependence(wdims, rdims, loops, {}, w_before_r=w_before_r)
    if truth_carried or truth_indep:
        assert result is not None, (
            f"missed dependence: {wdims} vs {rdims} bounds={bounds} "
            f"truth carried={truth_carried} indep={truth_indep}"
        )
        assert truth_carried <= result.carried_levels, (
            f"missed carried levels: truth {truth_carried} vs "
            f"reported {result.carried_levels}"
        )
        if truth_indep:
            assert result.loop_independent


@given(dep_case())
@settings(max_examples=200, deadline=None)
def test_none_means_provably_independent(case):
    """When the analysis says 'no dependence', the oracle agrees."""
    wdims, rdims, bounds, w_before_r = case
    loops = [loop(f"v{k}", lo, hi, k + 1)
             for k, (lo, hi) in enumerate(bounds)]
    result = true_dependence(wdims, rdims, loops, {}, w_before_r=w_before_r)
    if result is None:
        truth_carried, truth_indep = brute_force_true_dep(
            wdims, rdims, bounds, w_before_r
        )
        assert not truth_carried and not truth_indep, (
            f"false independence: {wdims} vs {rdims} bounds={bounds}"
        )
