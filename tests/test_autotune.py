"""The distribution auto-tuner: plans, memo, pruning, and search.

Covers the tuner's contracts:

* plan keys are content addresses — same (program, options, plan)
  always collides, any ingredient change never does;
* the evaluation memo is crash-safe in the repo's usual sense
  (atomic publish, corrupt/truncated/foreign entries are silent
  misses, unwritable directories degrade to memory-only);
* pruning: a compute-bound profile suppresses layout moves, cold
  arrays are never touched, and block_cyclic sweeps only chase
  cyclic wins;
* the search respects its budget, is deterministic, scores parallel
  and serial sweeps identically, and its winning plan re-runs
  bit-identical to sequential execution.
"""

import json
import os

import numpy as np
import pytest

from repro.apps.cg import cg_source
from repro.apps.stencil import stencil1d_source
from repro.core import Options
from repro.core.model import DistOverride
from repro.interp import run_sequential
from repro.lang import parse
from repro.tune import (
    EvalMemo,
    Plan,
    TuneSpace,
    autotune,
    initial_moves,
    plan_key,
    render_tune_report,
)
from repro.tune.space import refine_moves


@pytest.fixture(autouse=True)
def _isolated_memo(tmp_path, monkeypatch):
    """Every test gets its own memo directory (never ~/.cache)."""
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "memo"))


SRC = stencil1d_source(64, 4)
OPTS = Options(nprocs=4)


class TestPlanKeys:
    def test_same_inputs_same_key(self):
        p = Plan(8, (DistOverride("x", (("cyclic", None),)),))
        assert plan_key(SRC, OPTS, p) == plan_key(SRC, OPTS, p)

    def test_any_ingredient_changes_the_key(self):
        p = Plan(8, ())
        base = plan_key(SRC, OPTS, p)
        assert plan_key(SRC + "\n", OPTS, p) != base
        # the plan's nprocs overwrites the base's, so only options the
        # plan does not control may distinguish keys
        assert plan_key(SRC, Options(nprocs=2), p) == base
        assert plan_key(SRC, Options(strict=True), p) != base
        assert plan_key(SRC, OPTS, Plan(16, ())) != base
        assert plan_key(
            SRC, OPTS, Plan(8, (DistOverride("x", (("cyclic", None),)),))
        ) != base
        assert plan_key(SRC, OPTS, p, scheduler="coop") != base
        assert plan_key(SRC, OPTS, p, cost="free") != base

    def test_label_is_not_identity(self):
        assert Plan(8, (), label="a") == Plan(8, (), label="b")
        assert plan_key(SRC, OPTS, Plan(8, (), label="a")) == \
            plan_key(SRC, OPTS, Plan(8, (), label="b"))

    def test_apply_layers_overrides(self):
        base = Options(
            nprocs=4,
            distribute=(DistOverride("y", (("block", None),)),),
        )
        p = Plan(8, (DistOverride("x", (("cyclic", None),)),))
        applied = p.apply(base)
        assert applied.nprocs == 8
        assert {ov.array for ov in applied.distribute} == {"x", "y"}


class TestEvalMemo:
    def test_roundtrip_and_disk_hit(self, tmp_path):
        d = str(tmp_path / "m")
        m1 = EvalMemo(d)
        m1.store("k" * 64, {"time_us": 1.5})
        m2 = EvalMemo(d)  # fresh instance: must come from disk
        assert m2.load("k" * 64) == {"time_us": 1.5}
        assert m2.counters["disk_hits"] == 1

    def test_corrupt_entry_is_a_miss_and_dropped(self, tmp_path):
        d = str(tmp_path / "m")
        m = EvalMemo(d)
        m.store("k" * 64, {"time_us": 1.5})
        (path,) = [p for p in os.listdir(d) if p.endswith(".json")]
        full = os.path.join(d, path)
        with open(full, "w") as fh:
            fh.write("garbage")
        fresh = EvalMemo(d)
        assert fresh.load("k" * 64) is None
        assert fresh.counters["corrupt"] == 1
        assert not os.path.exists(full)

    def test_truncated_header_is_a_miss(self, tmp_path):
        d = str(tmp_path / "m")
        m = EvalMemo(d)
        m.store("k" * 64, {"time_us": 1.5})
        (path,) = os.listdir(d)
        with open(os.path.join(d, path), "r+") as fh:
            fh.truncate(5)
        assert EvalMemo(d).load("k" * 64) is None

    def test_unwritable_dir_degrades_to_memory(self, tmp_path):
        # a file where the directory should be: makedirs always fails,
        # even for root (chmod tricks don't)
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        m = EvalMemo(str(blocker / "memo"))
        m.store("k" * 64, {"time_us": 1.0})
        assert m.degraded
        assert m.load("k" * 64) == {"time_us": 1.0}  # memory tier

    def test_empty_env_disables_disk(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", "")
        assert EvalMemo(None).directory is None


class TestPruning:
    SPACE = TuneSpace(hot_targets=["x"],
                      current_kinds={"x": {"block"}, "cold": {"block"}},
                      nprocs0=4)

    def test_compute_bound_profile_suppresses_kind_moves(self):
        plans = initial_moves(self.SPACE, {"comm_share": 0.001})
        assert all(p.overrides == () for p in plans)

    def test_comm_bound_profile_generates_kind_moves(self):
        plans = initial_moves(self.SPACE, {"comm_share": 0.5})
        kinds = [p for p in plans if p.overrides]
        # x is all-block already: only the cyclic move is new
        assert [p.overrides[0].array for p in kinds] == ["x"]
        assert kinds[0].overrides[0].specs == (("cyclic", None),)

    def test_cold_targets_keep_defaults(self):
        plans = initial_moves(self.SPACE, {"comm_share": 0.5})
        assert all(
            ov.array != "cold" for p in plans for ov in p.overrides
        )

    def test_block_cyclic_only_chases_cyclic_wins(self):
        cyc = Plan(4, (DistOverride("x", (("cyclic", None),)),))
        lost = refine_moves(self.SPACE, 100.0, [(cyc, {"time_us": 150.0})])
        assert lost == []
        won = refine_moves(self.SPACE, 100.0, [(cyc, {"time_us": 50.0})])
        assert {p.overrides[0].specs[0] for p in won} == {
            ("block_cyclic", 2), ("block_cyclic", 4), ("block_cyclic", 8),
        }


class TestSearch:
    def test_budget_is_respected(self):
        out = autotune(SRC, OPTS, budget=3, workers=0)
        assert out.evaluated <= 3

    def test_budget_one_returns_base(self):
        out = autotune(SRC, OPTS, budget=1, workers=0)
        assert out.best == out.base.plan
        assert out.evaluated == 1

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            autotune(SRC, OPTS, budget=0)

    def test_finds_stencil_improvement(self):
        out = autotune(SRC, OPTS, budget=12, workers=0)
        assert out.best_metrics["time_us"] < out.base.time_us
        assert out.predicted_speedup > 1.0

    def test_deterministic(self):
        a = autotune(SRC, OPTS, budget=8, workers=0, memo_dir="")
        b = autotune(SRC, OPTS, budget=8, workers=0, memo_dir="")
        assert [(r.plan, r.metrics["time_us"]) for r in a.records] == \
            [(r.plan, r.metrics["time_us"]) for r in b.records]
        assert a.best == b.best

    def test_memo_hits_on_second_run(self):
        first = autotune(SRC, OPTS, budget=8, workers=0)
        again = autotune(SRC, OPTS, budget=8, workers=0)
        assert first.memo_hits == 0
        assert again.memo_hits == len(first.records)
        assert again.evaluated == 1  # only the (untraced-memo) base
        assert again.best == first.best

    def test_parallel_equals_serial(self):
        serial = autotune(SRC, OPTS, budget=8, workers=0, memo_dir="")
        par = autotune(SRC, OPTS, budget=8, workers=2, memo_dir="")
        key = lambda o: sorted(
            (r.plan.describe(), r.metrics.get("time_us"))
            for r in o.records
        )
        assert key(serial) == key(par)
        assert serial.best == par.best
        assert serial.best_metrics["time_us"] == \
            par.best_metrics["time_us"]

    def test_outcome_as_dict_is_json_ready(self):
        out = autotune(SRC, OPTS, budget=4, workers=0)
        d = json.loads(json.dumps(out.as_dict()))
        assert d["best"]["plan"]
        assert d["base"]["metrics"]["time_us"] > 0
        assert isinstance(d["plans"], list)
        assert d["predicted_speedup"] >= 1.0

    def test_report_renders(self):
        out = autotune(SRC, OPTS, budget=8, workers=0)
        text = render_tune_report(out)
        assert "as-written" in text
        assert "plans/s" in text


class TestTunedPlanCorrectness:
    def test_best_plan_reruns_bit_identical_to_sequential(self):
        """Applying the winning plan must not change program results:
        the tuned run's gathered arrays equal sequential execution."""
        from repro.core import compile_program
        from repro.machine import IPSC860

        src = cg_source(32, 4)
        out = autotune(src, Options(nprocs=4), budget=10, workers=0)
        tuned = out.best.apply(Options(nprocs=4))
        cp = compile_program(src, tuned)
        res = cp.run(cost=IPSC860, timeout_s=60.0)
        seq = run_sequential(parse(src))
        for name in ("x", "r"):
            if name in seq.arrays:
                got = res.gathered(name)
                assert np.array_equal(got, seq.arrays[name].data) or \
                    np.allclose(got, seq.arrays[name].data)

    def test_predicted_time_matches_applied_run(self):
        """The plan the tuner reports reproduces the tuner's own
        measurement when applied through the normal compile path."""
        from repro.core import compile_program
        from repro.machine import IPSC860

        out = autotune(SRC, OPTS, budget=8, workers=0)
        cp = compile_program(SRC, out.best.apply(OPTS))
        res = cp.run(cost=IPSC860, scheduler="event", codegen=False,
                     timeout_s=60.0)
        assert res.stats.time_us == pytest.approx(
            out.best_metrics["time_us"], rel=0, abs=1e-9
        )
