"""Metrics-subsystem tests.

Registry semantics (labels, histogram quantiles, both exposition
formats, mirror adoption), the enabling chain (``REPRO_METRICS`` /
``metrics=``), and — the load-bearing contract — the metrics-on/off
differential: instrumenting a run must leave results, virtual clocks,
and statistics bit-identical on every scheduler backend and execution
path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.apps.stencil import stencil1d_source
from repro.core.driver import compile_program
from repro.core.options import Mode, Options
from repro.machine import FREE, Machine
from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    metrics_enabled,
    mirror_counters,
    resolve_metrics,
)

SRC = stencil1d_source(64, 2)
OPTS = Options(nprocs=4, mode=Mode.INTER)

GRID = [(s, v) for s in ("coop", "threads", "event")
        for v in (False, True)]
GRID_IDS = [f"{s}-{'vec' if v else 'scalar'}" for s, v in GRID]


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help", labels=("op",))
        c.inc(1.0, op="a")
        c.inc(2.0, op="a")
        c.inc(5.0, op="b")
        assert c.value(op="a") == 3.0
        assert c.value(op="b") == 5.0
        # unlabeled family: .labels() binds the single child
        u = reg.counter("y_total")
        u.labels().inc()
        assert u.labels().get() == 1.0

    def test_label_validation(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labels=("op",))
        with pytest.raises(ValueError, match="labels"):
            c.inc(1.0, wrong="a")
        with pytest.raises(ValueError, match="labels"):
            c.labels(op="a", extra="b")

    def test_reregistration(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels=("op",))
        assert reg.counter("x_total") is a  # same family, one identity
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_gauge_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth").labels()
        g.set(7)
        assert g.get() == 7.0
        g.set(2)
        assert g.get() == 2.0

    def test_histogram_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0, 100.0)).labels()
        assert h.quantile(0.5) == 0.0  # empty
        for v in (0.5, 0.5, 5.0, 5.0, 50.0, 50.0, 50.0, 50.0):
            h.observe(v)
        assert h.count == 8
        assert h.sum == pytest.approx(211.0)
        # quantiles are bucket-interpolated: p50 falls in (10, 100]
        assert 0.0 < h.quantile(0.25) <= 10.0
        assert 10.0 < h.quantile(0.99) <= 100.0
        # overflow observations clamp to the last finite edge
        h.observe(1e9)
        assert h.quantile(1.0) == 100.0

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "ch", labels=("op",)).inc(2.0, op="a")
        reg.histogram("h_seconds", "hh",
                      buckets=(0.1, 1.0)).labels().observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["help"] == "ch"
        assert snap["c_total"]["values"] == [
            {"labels": {"op": "a"}, "value": 2.0}
        ]
        (hv,) = snap["h_seconds"]["values"]
        assert hv["count"] == 1 and hv["sum"] == 0.5
        assert set(hv["buckets"]) == {"0.1", "1", "+Inf"}
        assert {"p50", "p90", "p99"} <= set(hv)

    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c help", labels=("op",)).inc(3.0, op="a")
        h = reg.histogram("h_seconds", buckets=(0.1, 1.0)).labels()
        h.observe(0.05)
        h.observe(0.5)
        h.observe(50.0)
        text = reg.prometheus()
        lines = text.splitlines()
        assert "# HELP c_total c help" in lines
        assert "# TYPE c_total counter" in lines
        assert 'c_total{op="a"} 3' in lines
        assert "# TYPE h_seconds histogram" in lines
        # cumulative buckets, +Inf matches _count
        assert 'h_seconds_bucket{le="0.1"} 1' in lines
        assert 'h_seconds_bucket{le="1"} 2' in lines
        assert 'h_seconds_bucket{le="+Inf"} 3' in lines
        assert "h_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_mirror_counters_is_idempotent(self):
        reg = MetricsRegistry()
        mirror_counters(reg, "m_total", {"hits": 3, "skip": "str"})
        mirror_counters(reg, "m_total", {"hits": 5})  # set_to, not add
        fam = reg.counter("m_total")
        assert fam.value(event="hits") == 5.0
        snap = reg.snapshot()
        assert all(v["labels"]["event"] != "skip"
                   for v in snap["m_total"]["values"])


# ---------------------------------------------------------------------------
# enabling chain
# ---------------------------------------------------------------------------


class TestResolve:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert not metrics_enabled()
        assert resolve_metrics(None) is None
        assert Machine(2).metrics is None

    def test_explicit_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        reg = MetricsRegistry()
        assert resolve_metrics(reg) is reg
        assert resolve_metrics(True) is default_registry()
        assert resolve_metrics(False) is None
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert metrics_enabled()
        assert resolve_metrics(None) is default_registry()
        assert resolve_metrics(False) is None  # False beats the env
        monkeypatch.setenv("REPRO_METRICS", "off")
        assert not metrics_enabled()


# ---------------------------------------------------------------------------
# simulator integration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheduler,vectorize", GRID, ids=GRID_IDS)
class TestSimulatorMetrics:
    def test_run_records_families(self, scheduler, vectorize):
        reg = MetricsRegistry()
        cp = compile_program(SRC, OPTS)
        res = cp.run(scheduler=scheduler, vectorize=vectorize,
                     metrics=reg)
        snap = reg.snapshot()
        runs = {tuple(sorted(v["labels"].items())): v["value"]
                for v in snap["repro_sim_runs_total"]["values"]}
        assert runs[(("backend", scheduler), ("outcome", "ok"))] == 1.0
        events = {v["labels"]["event"]: v["value"]
                  for v in snap["repro_sim_events_total"]["values"]}
        assert events["messages"] == res.stats.messages
        assert events["bytes"] == res.stats.bytes
        # the stencil blocks on its shift receives: blocked-time
        # histogram observed at least one wait
        (blocked,) = [
            v for v in snap["repro_sim_blocked_us"]["values"]
            if v["labels"]["kind"] == "recv"
        ]
        assert blocked["count"] > 0
        # the run's stats carry the same snapshot; no tracer leaked
        assert res.stats.metrics is not None
        assert res.stats.as_dict()["metrics"] == res.stats.metrics
        assert res.trace is None

    def test_on_off_bit_identity(self, scheduler, vectorize):
        """The whole point: attaching metrics must not perturb the
        simulation — results, clocks, and stats stay bit-identical."""
        cp = compile_program(SRC, OPTS)
        off = cp.run(scheduler=scheduler, vectorize=vectorize,
                     metrics=False)
        on = cp.run(scheduler=scheduler, vectorize=vectorize,
                    metrics=MetricsRegistry())
        assert np.array_equal(off.gathered("x"), on.gathered("x"))
        a, b = off.stats.as_dict(), on.stats.as_dict()
        assert a["proc_times"] == b["proc_times"]  # exact virtual clocks
        for key in ("time_us", "messages", "bytes", "collectives",
                    "guards", "dispatches", "total_bytes"):
            assert a[key] == b[key], f"{key} perturbed by metrics"
