"""End-to-end tests for the §9 dgefa case study."""

import numpy as np
import pytest

from repro.apps import (
    dgefa_reference_lu,
    dgefa_source,
    handcoded_dgefa_spmd,
    make_dgefa_init,
)
from repro.core import Mode, Options, compile_program
from repro.interp import default_init
from repro.lang import ast as A
from repro.machine import FREE, IPSC860, Machine


def reference(n):
    init = make_dgefa_init(n)
    a = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            a[i, j] = init("a", (i + 1, j + 1))
    return init, dgefa_reference_lu(a)


def compile_and_run(n, P, mode, cost=FREE):
    init, ref = reference(n)
    cp = compile_program(dgefa_source(n), Options(nprocs=P, mode=mode))
    res = cp.run(cost=cost, init_fn=init)
    assert np.allclose(res.gathered("a"), ref), f"{mode} wrong LU"
    return cp, res


class TestCorrectness:
    @pytest.mark.parametrize("mode", [Mode.INTER, Mode.INTRA, Mode.RTR])
    def test_lu_matches_reference(self, mode):
        compile_and_run(12, 4, mode)

    @pytest.mark.parametrize("P", [1, 2, 3, 4])
    def test_processor_counts(self, P):
        compile_and_run(12, P, Mode.INTER)

    @pytest.mark.parametrize("n", [8, 16, 24])
    def test_sizes(self, n):
        compile_and_run(n, 4, Mode.INTER)


class TestCompiledShape:
    """The generated dgefa must be the textbook parallel LU."""

    @pytest.fixture(scope="class")
    def compiled(self):
        cp = compile_program(dgefa_source(16), Options(nprocs=4))
        return cp

    def test_one_broadcast_per_k(self, compiled):
        dgefa = compiled.program.unit("dgefa")
        bcasts = [
            s for s in A.walk_stmts(dgefa.body) if isinstance(s, A.Bcast)
        ]
        assert len(bcasts) == 1  # inside the k loop, outside the j loop
        k_loop = [s for s in dgefa.body if isinstance(s, A.Do)][0]
        assert any(s is bcasts[0] for s in k_loop.body)

    def test_bcast_section_is_pivot_column(self, compiled):
        from repro.lang.printer import expr_str

        dgefa = compiled.program.unit("dgefa")
        bcast = next(
            s for s in A.walk_stmts(dgefa.body) if isinstance(s, A.Bcast)
        )
        rendered = " ".join(expr_str(x) for x in bcast.subs)
        # a(k+1 : n, k) — n folded to its propagated constant value 16
        assert rendered == "k + 1:16 k"

    def test_dscal_guarded_by_owner(self, compiled):
        dgefa = compiled.program.unit("dgefa")
        guards = [
            s for s in A.walk_stmts(dgefa.body)
            if isinstance(s, A.If)
            and any(isinstance(x, A.Call) and x.name == "dscal"
                    for x in s.then_body)
        ]
        assert len(guards) == 1
        from repro.lang.printer import expr_str

        assert "my$p" in expr_str(guards[0].cond)

    def test_j_loop_cyclic_stride(self, compiled):
        from repro.lang.printer import expr_str

        dgefa = compiled.program.unit("dgefa")
        k_loop = [s for s in dgefa.body if isinstance(s, A.Do)][0]
        j_loop = [s for s in k_loop.body if isinstance(s, A.Do)][0]
        assert expr_str(j_loop.step) == "4"
        assert "pmod" in expr_str(j_loop.lo)

    def test_daxpy_body_has_no_comm_or_guards(self, compiled):
        daxpy = compiled.program.unit("daxpy")
        for s in A.walk_stmts(daxpy.body):
            assert not isinstance(s, (A.Send, A.Recv, A.Bcast, A.If))

    def test_no_rtr_fallbacks(self, compiled):
        assert compiled.report.rtr_fallbacks == []


class TestPerformanceShape:
    """§9's empirical claim: interprocedural optimization is crucial."""

    @pytest.fixture(scope="class")
    def stats(self):
        out = {}
        for mode in (Mode.INTER, Mode.INTRA, Mode.RTR):
            _cp, res = compile_and_run(16, 4, mode, cost=IPSC860)
            out[mode] = res.stats
        return out

    def test_ordering(self, stats):
        assert stats[Mode.INTER].time_us < stats[Mode.INTRA].time_us
        assert stats[Mode.INTRA].time_us < stats[Mode.RTR].time_us

    def test_rtr_order_of_magnitude_slower(self, stats):
        assert stats[Mode.RTR].time_us > 10 * stats[Mode.INTER].time_us

    def test_message_counts(self, stats):
        n = 16
        # INTER: one broadcast per k step
        assert stats[Mode.INTER].collectives == n - 1
        assert stats[Mode.INTER].messages == 0
        # INTRA: roughly one point-to-point per daxpy call that crosses
        # owners; far more than n-1 operations
        assert stats[Mode.INTRA].total_messages > 3 * (n - 1)
        # RTR: element-granularity messages dominate everything
        assert stats[Mode.RTR].messages > stats[Mode.INTRA].total_messages

    def test_guard_explosion_under_rtr(self, stats):
        assert stats[Mode.RTR].guards > 20 * max(stats[Mode.INTER].guards, 1)


class TestHandcodedComparison:
    def test_handcoded_matches_reference(self):
        n, P = 16, 4
        init, ref = reference(n)
        m = Machine(P, FREE)
        results = m.run(lambda ctx: handcoded_dgefa_spmd(ctx, n, init))
        got = np.array(results[0])
        for rank in range(P):
            for j in range(n):
                if j % P == rank:
                    got[:, j] = results[rank][:, j]
        assert np.allclose(got, ref)

    def test_compiled_close_to_handcoded(self):
        """The compiled INTER code should approach hand-written node
        code (§9): same collective count, time within a small factor."""
        n, P = 16, 4
        init, ref = reference(n)
        m = Machine(P, IPSC860)
        m.run(lambda ctx: handcoded_dgefa_spmd(ctx, n, init))
        hand = m.stats
        _cp, res = compile_and_run(n, P, Mode.INTER, cost=IPSC860)
        assert res.stats.collectives == hand.collectives
        assert res.stats.time_us <= 3.0 * hand.time_us


class TestDgesl:
    """The LINPACK solve pair: factor then forward/back substitution."""

    def setup_pair(self, n, P, mode):
        from repro.apps import (
            dgefa_dgesl_source,
            dgesl_reference,
        )

        init = make_dgefa_init(n)
        a = np.empty((n, n))
        for i in range(n):
            for j in range(n):
                a[i, j] = init("a", (i + 1, j + 1))
        lu = dgefa_reference_lu(a)
        bref = dgesl_reference(lu)
        cp = compile_program(dgefa_dgesl_source(n),
                             Options(nprocs=P, mode=mode))
        res = cp.run(cost=FREE, init_fn=init)
        return cp, res, lu, bref

    @pytest.mark.parametrize("mode", [Mode.INTER, Mode.INTRA])
    def test_solve_correct(self, mode):
        _cp, res, lu, bref = self.setup_pair(16, 4, mode)
        assert np.allclose(res.gathered("a"), lu)
        assert np.allclose(res.gathered("b"), bref)

    @pytest.mark.parametrize("P", [2, 3, 4])
    def test_proc_counts(self, P):
        _cp, res, lu, bref = self.setup_pair(12, P, Mode.INTER)
        assert np.allclose(res.gathered("b"), bref)

    def test_substitution_broadcasts_stay_in_k_loops(self):
        cp, _res, _lu, _bref = self.setup_pair(16, 4, Mode.INTER)
        dgesl = cp.program.unit("dgesl")
        loops = [s for s in dgesl.body if isinstance(s, A.Do)]
        # the two substitution loops carry per-iteration broadcasts of
        # the pivot column owned by mod(k-1, P)
        fwd_bcasts = [s for s in loops[1].body if isinstance(s, A.Bcast)]
        bwd_bcasts = [s for s in loops[2].body if isinstance(s, A.Bcast)]
        assert len(fwd_bcasts) == 1
        assert len(bwd_bcasts) == 2  # pivot element + column segment

    def test_callees_free_of_communication(self):
        cp, _res, _lu, _bref = self.setup_pair(16, 4, Mode.INTER)
        for unit in ("forward", "backward"):
            proc = cp.program.unit(unit)
            assert not any(
                isinstance(s, (A.Send, A.Recv, A.Bcast))
                for s in A.walk_stmts(proc.body)
            )


class TestPivotedDgefa:
    """Full LINPACK dgefa with partial pivoting."""

    @staticmethod
    def general_init(name, idx):
        if len(idx) != 2:
            return 0.0
        i, j = idx
        return ((i * 37 + j * 23) % 101) / 101.0 - 0.5

    def run_case(self, n, P, mode=Mode.INTER):
        from repro.apps import dgefa_pivot_reference, dgefa_pivot_source
        from repro.interp import run_sequential
        from repro.lang import parse

        init = self.general_init
        a = np.empty((n, n))
        for i in range(n):
            for j in range(n):
                a[i, j] = init("a", (i + 1, j + 1))
        ref, pivots = dgefa_pivot_reference(a)
        src = dgefa_pivot_source(n)
        seq = run_sequential(parse(src), init_fn=init)
        assert np.allclose(seq.arrays["a"].data, ref)
        cp = compile_program(src, Options(nprocs=P, mode=mode))
        res = cp.run(cost=FREE, init_fn=init)
        assert np.allclose(res.gathered("a"), ref)
        return cp, res, pivots

    @pytest.mark.parametrize("mode", [Mode.INTER, Mode.INTRA])
    def test_correct(self, mode):
        cp, res, pivots = self.run_case(16, 4, mode)
        assert any(p != k for k, p in enumerate(pivots)), \
            "test matrix must actually require pivoting"

    @pytest.mark.parametrize("P", [2, 3, 4])
    def test_proc_counts(self, P):
        self.run_case(12, P)

    def test_no_fallbacks(self):
        cp, _res, _p = self.run_case(16, 4)
        assert cp.report.rtr_fallbacks == []

    def test_two_broadcasts_per_step(self):
        """One column broadcast for the pivot search, one for the
        multipliers; everything else local."""
        cp, res, _p = self.run_case(16, 4)
        assert res.stats.collectives == 2 * 15
        assert res.stats.messages == 0

    def test_search_bcast_before_search_loop(self):
        cp, _res, _p = self.run_case(16, 4)
        piv = cp.program.unit("pivgefa")
        k_loop = [s for s in piv.body if isinstance(s, A.Do)][0]
        kinds = [type(s).__name__ for s in k_loop.body]
        first_bcast = kinds.index("Bcast")
        first_do = kinds.index("Do")
        assert first_bcast < first_do

    def test_rowswap_fully_local(self):
        cp, _res, _p = self.run_case(16, 4)
        rs = cp.program.unit("rowswap")
        for s in A.walk_stmts(rs.body):
            assert not isinstance(s, (A.Send, A.Recv, A.Bcast))
