"""Tests for the classical reaching-definitions and live-variables
instances (the local analyses reaching/live decompositions mirror)."""

from repro.analysis.livevars import compute_live_vars
from repro.analysis.reachingdefs import compute_reaching_defs
from repro.lang import ast as A
from repro.lang import parse


def body_of(src):
    return parse(src).main.body


class TestReachingDefs:
    def test_straightline(self):
        body = body_of("program p\na = 1\nb = a\nend\n")
        rd = compute_reaching_defs(body)
        defs = rd.reaching(body[1], "a")
        assert len(defs) == 1 and defs[0] is body[0]
        assert rd.unique_reaching(body[1], "a") is body[0]

    def test_redefinition_kills(self):
        body = body_of("program p\na = 1\na = 2\nb = a\nend\n")
        rd = compute_reaching_defs(body)
        defs = rd.reaching(body[2], "a")
        assert len(defs) == 1 and defs[0] is body[1]

    def test_branches_merge(self):
        body = body_of(
            "program p\nc = 1\nif (c > 0) then\na = 1\nelse\na = 2\n"
            "endif\nb = a\nend\n"
        )
        rd = compute_reaching_defs(body)
        assert len(rd.reaching(body[2], "a")) == 2
        assert rd.unique_reaching(body[2], "a") is None

    def test_loop_header_def(self):
        body = body_of("program p\ndo i = 1, 3\na = i\nenddo\nb = i\nend\n")
        rd = compute_reaching_defs(body)
        # the DO statement defines i
        defs = rd.reaching(body[1], "i")
        assert len(defs) == 1 and defs[0] is body[0]

    def test_loop_carried_definition(self):
        body = body_of(
            "program p\na = 1\ndo i = 1, 3\nb = a\na = 2\nenddo\nend\n"
        )
        rd = compute_reaching_defs(body)
        use = body[1].body[0]
        assert len(rd.reaching(use, "a")) == 2


class TestLiveVars:
    def test_chain(self):
        body = body_of("program p\na = 1\nb = a\nc = b\nend\n")
        lv = compute_live_vars(body)
        assert "a" in lv.live_before(body[1])
        assert "a" not in lv.live_before(body[0])
        assert "b" in lv.live_after(body[1])

    def test_dead_store(self):
        body = body_of("program p\na = 1\na = 2\nb = a\nend\n")
        lv = compute_live_vars(body)
        assert lv.is_dead_store(body[0])      # a = 1 never read
        assert not lv.is_dead_store(body[1])

    def test_live_out_seed(self):
        body = body_of("program p\na = 1\nend\n")
        lv = compute_live_vars(body, live_out=frozenset({"a"}))
        assert not lv.is_dead_store(body[0])

    def test_condition_uses(self):
        body = body_of(
            "program p\nc = 0\nif (c > 0) then\nb = 1\nendif\nend\n"
        )
        lv = compute_live_vars(body)
        assert "c" in lv.live_after(body[0])

    def test_loop_keeps_values_live(self):
        body = body_of(
            "program p\ns = 0\ndo i = 1, 3\ns = s + i\nenddo\nb = s\nend\n"
        )
        lv = compute_live_vars(body)
        assert "s" in lv.live_after(body[0])
        inner = body[1].body[0]
        assert "s" in lv.live_after(inner)  # via the back edge

    def test_array_partial_update_stays_live(self):
        body = body_of(
            "program p\nreal x(10)\nx(1) = 0\ns = x(2)\nend\n"
        )
        lv = compute_live_vars(body)
        assert "x" in lv.live_before(body[0])  # partial write: x live through

    def test_call_arguments_used(self):
        src = (
            "program p\nreal x(5)\nn = 2\ncall f(x, n)\nend\n"
            "subroutine f(a, m)\nreal a(5)\ninteger m\na(m) = 1\nend\n"
        )
        body = parse(src).main.body
        lv = compute_live_vars(body)
        assert {"x", "n"} <= set(lv.live_before(body[1]))
