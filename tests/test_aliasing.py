"""Tests for parameter-passing alias analysis and the §6.4 restriction
(no dynamic data decomposition of aliased variables)."""

import pytest

from repro.analysis.aliasing import (
    AliasedRedistributionError,
    check_dynamic_decomposition,
    compute_aliases,
)
from repro.callgraph.acg import ACG
from repro.core import Options, compile_program
from repro.lang import parse


class TestAliasDetection:
    def test_same_actual_twice(self):
        src = (
            "program p\nreal x(10)\ncall f(x, x)\nend\n"
            "subroutine f(a, b)\nreal a(10), b(10)\na(1) = b(2)\nend\n"
        )
        acg = ACG(parse(src))
        info = compute_aliases(acg)
        assert info.aliased("f", "a", "b")
        assert info.aliased_formals("f") == {"a", "b"}

    def test_distinct_actuals_do_not_alias(self):
        src = (
            "program p\nreal x(10), y(10)\ncall f(x, y)\nend\n"
            "subroutine f(a, b)\nreal a(10), b(10)\na(1) = b(2)\nend\n"
        )
        info = compute_aliases(ACG(parse(src)))
        assert not info.aliased("f", "a", "b")
        assert info.aliased_formals("f") == set()

    def test_alias_propagates_down_chain(self):
        src = (
            "program p\nreal x(10)\ncall f(x, x)\nend\n"
            "subroutine f(a, b)\nreal a(10), b(10)\ncall g(a, b)\nend\n"
            "subroutine g(c, d)\nreal c(10), d(10)\nc(1) = d(2)\nend\n"
        )
        info = compute_aliases(ACG(parse(src)))
        assert info.aliased("g", "c", "d")

    def test_alias_does_not_leak_to_sibling_calls(self):
        src = (
            "program p\nreal x(10), y(10)\ncall f(x, x)\ncall f(x, y)\nend\n"
            "subroutine f(a, b)\nreal a(10), b(10)\na(1) = b(2)\nend\n"
        )
        info = compute_aliases(ACG(parse(src)))
        # may-alias: the (x, x) site makes a/b aliased (over all sites)
        assert info.aliased("f", "a", "b")

    def test_three_way_alias(self):
        src = (
            "program p\nreal x(10)\ncall f(x, x, x)\nend\n"
            "subroutine f(a, b, c)\nreal a(10), b(10), c(10)\n"
            "a(1) = b(2) + c(3)\nend\n"
        )
        info = compute_aliases(ACG(parse(src)))
        assert info.aliased("f", "a", "b")
        assert info.aliased("f", "b", "c")
        assert info.aliased("f", "a", "c")


class TestSection64Restriction:
    def test_dynamic_decomposition_of_alias_rejected(self):
        src = (
            "program p\nreal x(16)\ndistribute x(block)\n"
            "call f(x, x)\nend\n"
            "subroutine f(a, b)\nreal a(16), b(16)\n"
            "distribute a(cyclic)\n"
            "do i = 1, 16\na(i) = f(b(i))\nenddo\nend\n"
        )
        acg = ACG(parse(src))
        with pytest.raises(AliasedRedistributionError, match="aliased"):
            check_dynamic_decomposition(acg, compute_aliases(acg))

    def test_compile_program_enforces_it(self):
        src = (
            "program p\nreal x(16)\ndistribute x(block)\n"
            "call f(x, x)\nend\n"
            "subroutine f(a, b)\nreal a(16), b(16)\n"
            "distribute a(cyclic)\n"
            "do i = 1, 16\na(i) = f(b(i))\nenddo\nend\n"
        )
        with pytest.raises(AliasedRedistributionError):
            compile_program(src, Options(nprocs=4))

    def test_unaliased_dynamic_decomposition_allowed(self):
        src = (
            "program p\nreal x(16)\ndistribute x(block)\ncall f(x)\nend\n"
            "subroutine f(a)\nreal a(16)\ndistribute a(cyclic)\n"
            "do i = 1, 16\na(i) = f(a(i))\nenddo\nend\n"
        )
        acg = ACG(parse(src))
        check_dynamic_decomposition(acg, compute_aliases(acg))  # no raise

    def test_aliased_without_redistribution_allowed(self):
        src = (
            "program p\nreal x(16)\ndistribute x(block)\ncall f(x, x)\nend\n"
            "subroutine f(a, b)\nreal a(16), b(16)\n"
            "do i = 1, 16\na(i) = b(i) + 1\nenddo\nend\n"
        )
        acg = ACG(parse(src))
        check_dynamic_decomposition(acg, compute_aliases(acg))  # no raise
