"""Unit + property tests for distribution index math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.rsd import rsd
from repro.dist import (
    DecompValue,
    DimDistribution,
    DirectiveTable,
    Distribution,
    align_permutation,
    factor_grid,
    permute_specs,
)
from repro.lang import ast as A
from repro.lang.ast import DistSpec


def dist1d(kind, n, P, param=None):
    return Distribution.from_specs([DistSpec(kind, param)], [(1, n)], P)


class TestDimDistribution:
    def test_block_partition(self):
        d = DimDistribution.make("block", 1, 100, 4)
        assert d.block == 25
        assert [str(d.local_set(p)[0]) for p in range(4)] == [
            "1:25", "26:50", "51:75", "76:100",
        ]

    def test_block_uneven(self):
        d = DimDistribution.make("block", 1, 10, 4)  # blocks of 3
        assert d.block == 3
        sets = [d.local_set(p)[0] for p in range(4)]
        assert [s.count for s in sets] == [3, 3, 3, 1]
        assert d.owner_coord(10) == 3

    def test_block_last_proc_absorbs_tail(self):
        # n=9, P=4 -> blocks of 3: proc 3 owns nothing
        d = DimDistribution.make("block", 1, 9, 4)
        assert d.local_set(3)[0].empty

    def test_cyclic_partition(self):
        d = DimDistribution.make("cyclic", 1, 8, 4)
        assert str(d.local_set(1)[0]) == "2:8:4"
        assert d.owner_coord(5) == 0
        assert d.owner_coord(6) == 1

    def test_block_cyclic_partition(self):
        d = DimDistribution.make("block_cyclic", 1, 16, 2, param=4)
        assert [str(r) for r in d.local_set(0)] == ["1:4", "9:12"]
        assert [str(r) for r in d.local_set(1)] == ["5:8", "13:16"]
        assert d.owner_coord(9) == 0 and d.owner_coord(13) == 1

    def test_none_owns_all(self):
        d = DimDistribution.make("none", 1, 50, 1)
        assert str(d.local_set(0)[0]) == "1:50"

    def test_out_of_range_raises(self):
        d = DimDistribution.make("block", 1, 100, 4)
        with pytest.raises(IndexError):
            d.owner_coord(101)
        with pytest.raises(IndexError):
            d.local_set(4)

    def test_nonunit_lower_bound(self):
        d = DimDistribution.make("block", 0, 99, 4)
        assert str(d.local_set(0)[0]) == "0:24"
        assert d.owner_coord(0) == 0 and d.owner_coord(99) == 3


class TestDistribution:
    def test_paper_fig1_block(self):
        d = dist1d("block", 100, 4)
        assert str(d.local_index_set(0)) == "[1:25]"
        assert d.owner([26]) == 1

    def test_paper_fig4_row_and_col(self):
        row = Distribution.from_specs(
            [DistSpec("block"), DistSpec("none")], [(1, 100), (1, 100)], 4
        )
        col = Distribution.from_specs(
            [DistSpec("none"), DistSpec("block")], [(1, 100), (1, 100)], 4
        )
        assert str(row.local_index_set(0)) == "[1:25, 1:100]"
        assert str(col.local_index_set(0)) == "[1:100, 1:25]"

    def test_owner_coverage_block(self):
        d = dist1d("block", 100, 4)
        counts = {p: 0 for p in range(4)}
        for g in range(1, 101):
            counts[d.owner([g])] += 1
        assert all(v == 25 for v in counts.values())

    def test_owners_of_section(self):
        d = dist1d("block", 100, 4)
        assert d.owners_of(rsd((26, 30))) == {1}
        assert d.owners_of(rsd((20, 30))) == {0, 1}
        assert d.owners_of(rsd((1, 100))) == {0, 1, 2, 3}

    def test_owners_of_cyclic_column(self):
        d = Distribution.from_specs(
            [DistSpec("none"), DistSpec("cyclic")], [(1, 8), (1, 8)], 4
        )
        assert d.owners_of(rsd((1, 8), 5)) == {0}
        assert d.owners_of(rsd((1, 8), 6)) == {1}

    def test_replicated(self):
        d = Distribution.replicated([(1, 10)], 4)
        assert d.is_replicated
        for p in range(4):
            assert str(d.local_index_set(p)) == "[1:10]"
            assert d.owns(p, [7])

    def test_2d_grid(self):
        d = Distribution.from_specs(
            [DistSpec("block"), DistSpec("block")], [(1, 8), (1, 8)], 4
        )
        assert d.grid_shape() == (2, 2)
        owners = {d.owner([i, j]) for i in range(1, 9) for j in range(1, 9)}
        assert owners == {0, 1, 2, 3}

    def test_rank_coord_roundtrip(self):
        d = Distribution.from_specs(
            [DistSpec("block"), DistSpec("block")], [(1, 8), (1, 8)], 4
        )
        for r in range(4):
            assert d.rank_of_coords(d.coords_of_rank(r)) == r

    def test_local_index_sets_block_cyclic(self):
        d = dist1d("block_cyclic", 16, 2, param=4)
        sets = d.local_index_sets(0)
        assert [str(s) for s in sets] == ["[1:4]", "[9:12]"]

    def test_same_mapping(self):
        assert dist1d("block", 100, 4).same_mapping(dist1d("block", 100, 4))
        assert not dist1d("block", 100, 4).same_mapping(dist1d("cyclic", 100, 4))

    def test_specs_roundtrip(self):
        d = Distribution.from_specs(
            [DistSpec("block_cyclic", 8), DistSpec("none")],
            [(1, 64), (1, 64)],
            4,
        )
        assert d.specs == (DistSpec("block_cyclic", 8), DistSpec("none"))

    def test_spec_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            Distribution.from_specs([DistSpec("block")], [(1, 10), (1, 10)], 4)


@given(
    kind=st.sampled_from(["block", "cyclic", "block_cyclic"]),
    n=st.integers(min_value=1, max_value=200),
    P=st.integers(min_value=1, max_value=8),
    param=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=300)
def test_ownership_partitions_index_space(kind, n, P, param):
    """Every global index is owned by exactly one processor, and the
    local index sets tile the index space."""
    d = dist1d(kind, n, P, param=param)
    seen = {}
    for g in range(1, n + 1):
        seen[g] = d.owner([g])
    covered = set()
    for p in range(d.nprocs):
        for s in d.local_index_sets(p):
            dim = s.dims[0]
            if dim.empty:
                continue
            for g in dim.iter():
                assert g not in covered, f"{g} owned twice"
                covered.add(g)
                assert seen[g] == p, f"owner({g}) != local set of {p}"
    assert covered == set(range(1, n + 1))


class TestAlignment:
    def test_identity(self):
        assert align_permutation(["i", "j"], ["i", "j"]) == [0, 1]

    def test_transpose(self):
        assert align_permutation(["i", "j"], ["j", "i"]) == [1, 0]

    def test_permute_specs_fig4(self):
        # X distributed (block, :), Y(i,j) aligned with X(j,i) -> (:, block)
        specs = (DistSpec("block"), DistSpec("none"))
        perm = align_permutation(["i", "j"], ["j", "i"])
        assert permute_specs(specs, perm) == (DistSpec("none"), DistSpec("block"))

    def test_mismatched_indices_raise(self):
        with pytest.raises(ValueError):
            align_permutation(["i", "j"], ["i", "k"])

    def test_repeated_index_raises(self):
        with pytest.raises(ValueError):
            align_permutation(["i", "i"], ["i", "i"])


class TestDirectiveTable:
    def make_table(self):
        return DirectiveTable({"x": 2, "y": 2, "z": 1})

    def test_direct_array_distribute(self):
        t = self.make_table()
        out = t.resolve_distribute(
            A.Distribute("x", [DistSpec("block"), DistSpec("none")])
        )
        assert out["x"] == DecompValue((DistSpec("block"), DistSpec("none")))

    def test_align_then_distribute_fig4(self):
        t = self.make_table()
        t.add_align(A.Align("y", ["i", "j"], "x", ["j", "i"]))
        out = t.resolve_distribute(
            A.Distribute("x", [DistSpec("block"), DistSpec("none")])
        )
        assert out["y"] == DecompValue((DistSpec("none"), DistSpec("block")))

    def test_distribute_decomposition(self):
        t = self.make_table()
        t.add_decomposition(A.Decomposition("d", [A.Num(100)]))
        t.add_align(A.Align("z", ["i"], "d", ["i"]))
        out = t.resolve_distribute(A.Distribute("d", [DistSpec("cyclic")]))
        assert out["z"] == DecompValue((DistSpec("cyclic"),))

    def test_alignment_chain(self):
        t = self.make_table()
        t.add_align(A.Align("y", ["i", "j"], "x", ["j", "i"]))
        # x itself aligned with a decomposition
        t.add_decomposition(A.Decomposition("d", [A.Num(10), A.Num(10)]))
        t.add_align(A.Align("x", ["a", "b"], "d", ["a", "b"]))
        out = t.resolve_distribute(
            A.Distribute("d", [DistSpec("block"), DistSpec("none")])
        )
        assert out["x"] == DecompValue((DistSpec("block"), DistSpec("none")))
        assert out["y"] == DecompValue((DistSpec("none"), DistSpec("block")))

    def test_unknown_target_raises(self):
        with pytest.raises(ValueError):
            self.make_table().resolve_distribute(
                A.Distribute("nope", [DistSpec("block")])
            )

    def test_nonconstant_extent_raises(self):
        t = self.make_table()
        with pytest.raises(ValueError):
            t.add_decomposition(A.Decomposition("d", [A.Var("n")]))


class TestFactorGrid:
    def test_single_axis(self):
        assert factor_grid(8, 1) == (8,)

    def test_two_axes_square(self):
        assert factor_grid(16, 2) == (4, 4)

    def test_two_axes_nonsquare(self):
        g = factor_grid(8, 2)
        assert g[0] * g[1] == 8

    def test_zero_axes(self):
        assert factor_grid(8, 0) == ()

    @given(st.integers(1, 64), st.integers(1, 3))
    def test_product_preserved(self, P, k):
        g = factor_grid(P, k)
        prod = 1
        for e in g:
            prod *= e
        assert prod == P and len(g) == k
