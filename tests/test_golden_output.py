"""Golden-output tests: the generated node programs for the paper's
figures, locked as text.  These are deliberately brittle — any change to
bound arithmetic, guard shapes, or communication placement shows up as
a readable diff against the figure-style output."""

import textwrap

from repro.apps import FIG1, dgefa_source
from repro.core import Mode, Options, compile_program
from repro.lang.printer import procedure_str


def compiled_unit(src, unit, mode=Mode.INTER, **opt):
    cp = compile_program(src, Options(nprocs=4, mode=mode, **opt))
    return procedure_str(cp.program.unit(unit)) + "\n"


FIG2_F1 = """\
subroutine f1(x)
  real x(100)
  my$p = myproc()
  do i = 1 + my$p * 25, min(95, 1 + (my$p + 1) * 25 - 1)
    x(i) = f(x(i + 5))
  enddo
end
"""

DGEFA_EXPECTED = """\
subroutine dgefa(a, n)
  real a(n, n)
  integer n
  integer k
  integer j
  my$p = myproc()
  do k = 1, n - 1
    if (mod(k - 1, 4) == my$p) then
      call dscal(a, n, k)
    endif
    broadcast a(k + 1:16, k) from mod(k - 1, 4)  ! daxpy:a[i, k]
    do j = k + 1 + pmod(my$p - (k + 1 - 1), 4), n, 4
      call daxpy(a, n, k, j)
    enddo
  enddo
end
"""

DAXPY_EXPECTED = """\
subroutine daxpy(a, n, k, j)
  real a(n, n)
  integer n
  integer k
  integer j
  integer i
  do i = k + 1, n
    a(i, j) = a(i, j) - a(k, j) * a(i, k)
  enddo
end
"""


class TestGoldenFigures:
    def test_fig2_f1(self):
        assert compiled_unit(FIG1, "f1") == FIG2_F1

    def test_dgefa(self):
        assert compiled_unit(dgefa_source(16), "dgefa") == DGEFA_EXPECTED

    def test_daxpy_untouched(self):
        """daxpy's body needs no guards or communication: its partition
        and its pivot-column fetch both moved to the caller."""
        assert compiled_unit(dgefa_source(16), "daxpy") == DAXPY_EXPECTED

    def test_fig3_rtr_shape(self):
        text = compiled_unit(FIG1, "f1", mode=Mode.RTR)
        expected_fragments = [
            "if (my$p == owner(x(i + 5)) .and. my$p /= owner(x(i))) then",
            "send x(i + 5) to owner(x(i))",
            "if (my$p == owner(x(i))) then",
            "recv x(i + 5) from owner(x(i + 5))",
            "x(i) = f(x(i + 5))",
        ]
        pos = -1
        for frag in expected_fragments:
            nxt = text.find(frag)
            assert nxt > pos, f"missing/ misordered: {frag}"
            pos = nxt

    def test_fig2_main_comm_shape(self):
        cp = compile_program(FIG1, Options(nprocs=4, mode=Mode.INTER))
        text = procedure_str(cp.program.main)
        assert "if (my$p > 0) then" in text
        assert "send x(1 + my$p * 25:min(1 + my$p * 25 + 4, 100)) " \
               "to my$p - 1" in text
        assert "if (my$p < 3) then" in text
        assert "from my$p + 1" in text

    def test_determinism_of_golden_outputs(self):
        a = compiled_unit(dgefa_source(16), "dgefa")
        b = compiled_unit(dgefa_source(16), "dgefa")
        assert a == b
