"""Error-handling tests: malformed input, out-of-subset programs, and
runtime failures must produce actionable diagnostics, never silence."""

import numpy as np
import pytest

from repro.callgraph.acg import CallGraphError
from repro.core import Mode, Options, compile_program
from repro.core.reaching import ReachingError
from repro.interp import InterpError, run_sequential, run_spmd
from repro.lang import ParseError, parse
from repro.machine import FREE, SimulationError


class TestParserDiagnostics:
    def test_position_in_message(self):
        with pytest.raises(ParseError, match="2:"):
            parse("program p\nx = = 1\nend\n")

    def test_unbalanced_do(self):
        with pytest.raises(ParseError):
            parse("program p\ndo i = 1, 3\nx = 1\nend\n")

    def test_missing_then_block_end(self):
        with pytest.raises(ParseError):
            parse("program p\nif (x > 0) then\na = 1\nend\n")

    def test_bad_distribute_spec(self):
        with pytest.raises(ParseError, match="unknown distribution"):
            parse("program p\ndistribute x(diagonal)\nend\n")

    def test_empty_source(self):
        with pytest.raises(ParseError, match="empty"):
            parse("")


class TestCompileDiagnostics:
    def test_recursion_rejected(self):
        src = (
            "program p\ncall a1(1)\nend\n"
            "subroutine a1(k)\ninteger k\ncall a1(k)\nend\n"
        )
        with pytest.raises(CallGraphError, match="recursive"):
            compile_program(src, Options(nprocs=4))

    def test_unknown_procedure(self):
        with pytest.raises(CallGraphError, match="undefined"):
            compile_program("program p\ncall ghost(1)\nend\n",
                            Options(nprocs=4))

    def test_decomposition_extent_not_constant(self):
        src = (
            "program p\nreal x(10)\ninteger n\nn = 10\n"
            "decomposition d(n)\nalign x(i) with d(i)\n"
            "distribute d(block)\nx(1) = 0\nend\n"
        )
        with pytest.raises((ReachingError, ValueError)):
            compile_program(src, Options(nprocs=4))

    def test_multi_dim_grid_falls_back_not_crashes(self):
        src = (
            "program p\nreal x(8, 8)\ndistribute x(block, block)\n"
            "do j = 1, 8\ndo i = 1, 8\nx(i, j) = i + j\nenddo\nenddo\nend\n"
        )
        cp = compile_program(src, Options(nprocs=4))
        assert any("more than one distributed dimension" in r
                   for r in cp.report.rtr_fallbacks)
        seq = run_sequential(parse(src)).arrays["x"].data
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("x"), seq)

    def test_unsupported_lhs_subscript_falls_back(self):
        src = (
            "program p\nreal x(16)\ndistribute x(block)\n"
            "do i = 1, 8\nx(2 * i) = i * 1.0\nenddo\nend\n"
        )
        cp = compile_program(src, Options(nprocs=4))
        assert any("unsupported lhs subscript" in r
                   for r in cp.report.rtr_fallbacks)
        seq = run_sequential(parse(src)).arrays["x"].data
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("x"), seq)


class TestRuntimeDiagnostics:
    def test_out_of_bounds_names_array_and_dim(self):
        src = "program p\nreal x(10)\nx(11) = 1\nend\n"
        with pytest.raises(IndexError, match="x: index 11"):
            run_sequential(parse(src))

    def test_undefined_scalar_names_variable(self):
        src = "program p\na = ghost + 1\nend\n"
        with pytest.raises(InterpError, match="ghost"):
            run_sequential(parse(src))

    def test_node_error_reports_rank(self):
        src = (
            "program p\ninteger k\nk = myproc()\n"
            "if (k == 1) then\nx = 1 / (k - k)\nendif\nend\n"
        )
        prog = parse(src)
        with pytest.raises(SimulationError, match="node 1"):
            run_spmd(prog, 2, FREE)

    def test_zero_do_step(self):
        src = "program p\nn = 0\ndo i = 1, 3, n\nenddo\nend\n"
        with pytest.raises(InterpError, match="zero DO step"):
            run_sequential(parse(src))

    def test_parameter_must_be_constant(self):
        src = "program p\nparameter (n = m + 1)\nend\n"
        with pytest.raises(InterpError, match="not constant"):
            run_sequential(parse(src))


class TestReportTransparency:
    def test_rtr_reasons_are_sentences(self):
        src = (
            "program p\nreal x(16)\ndistribute x(block_cyclic(2))\n"
            "do i = 1, 15\nx(i) = f(x(i + 1))\nenddo\nend\n"
        )
        cp = compile_program(src, Options(nprocs=4))
        assert cp.report.rtr_fallbacks
        for reason in cp.report.rtr_fallbacks:
            assert len(reason) > 10  # readable, not a code

    def test_comm_placements_list_levels(self):
        from repro.apps import FIG4

        cp = compile_program(FIG4, Options(nprocs=4))
        assert all("level" in line for line in cp.report.comm_placements)
