"""Traced-vs-untraced differential suite: tracing must be invisible.

The tracer's design constraint is *bit-identical-off*: attaching a
Tracer only reads simulation state (virtual timestamps at
non-observation points come from ``ProcContext.clock_estimate``, which
previews the batched-charge flush without performing it).  This suite
runs every application with and without tracing — across both
schedulers, both execution paths, and under a chaos fault plan — and
requires identical arrays, per-rank virtual clocks, and delivery
statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.adi import adi_source
from repro.apps.cg import cg_source
from repro.apps.dgefa import dgefa_source, make_dgefa_init
from repro.apps.stencil import stencil1d_source, stencil2d_source
from repro.apps.wave import wave_source
from repro.core.driver import compile_program
from repro.core.options import Mode, Options
from repro.machine import FaultPlan

STAT_FIELDS = (
    "messages", "bytes", "collectives", "collective_bytes",
    "remaps", "remap_bytes", "guards", "flops",
    "comm_cache_hits", "comm_cache_misses",
)

CASES = [
    ("stencil1d", stencil1d_source(128, 4), None),
    ("stencil2d", stencil2d_source(24, 2), None),
    ("adi", adi_source(32, 2), None),
    ("cg", cg_source(32, 4), None),
    ("dgefa", dgefa_source(16), make_dgefa_init(16)),
    ("wave", wave_source(64, 4), None),
]


def _run(cp, init, *, trace, **kw):
    extra = {"init_fn": init} if init is not None else {}
    return cp.run(timeout_s=30.0, trace=trace, **extra, **kw)


def _assert_invisible(off, on, label):
    assert off.trace is None
    assert on.trace is not None and on.trace.event_count() > 0
    assert off.stats.proc_times == on.stats.proc_times, label
    for f in STAT_FIELDS:
        assert getattr(off.stats, f) == getattr(on.stats, f), (label, f)
    for name in off.frames[0].arrays:
        for rk, (fa, fb) in enumerate(zip(off.frames, on.frames)):
            assert np.array_equal(
                fa.arrays[name].data, fb.arrays[name].data,
                equal_nan=True,
            ), f"{label}: array {name} differs on rank {rk}"


@pytest.mark.parametrize("vectorize", [False, True],
                         ids=["scalar", "vectorized"])
@pytest.mark.parametrize("scheduler", ["coop", "threads"])
@pytest.mark.parametrize(
    "src,init", [c[1:] for c in CASES], ids=[c[0] for c in CASES]
)
def test_tracing_is_invisible(src, init, scheduler, vectorize):
    cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
    off = _run(cp, init, trace=False, scheduler=scheduler,
               vectorize=vectorize)
    on = _run(cp, init, trace=True, scheduler=scheduler,
              vectorize=vectorize)
    _assert_invisible(off, on, f"{scheduler} vec={vectorize}")


@pytest.mark.parametrize("scheduler", ["coop", "threads"])
def test_tracing_is_invisible_under_faults(scheduler):
    """Fault events are recorded from the same deterministic draws the
    untraced run makes — injection must not consume extra randomness."""
    cp = compile_program(stencil1d_source(128, 4),
                         Options(nprocs=4, mode=Mode.INTER))
    plan = FaultPlan(seed=2, delay_prob=0.5, delay_max_us=80.0,
                     drop_prob=0.1, retry_timeout_us=50.0)
    off = _run(cp, None, trace=False, scheduler=scheduler, faults=plan)
    on = _run(cp, None, trace=True, scheduler=scheduler, faults=plan)
    _assert_invisible(off, on, f"faults {scheduler}")
    assert on.trace.events("fault")
    assert on.stats.faulted_messages == off.stats.faulted_messages


@pytest.mark.parametrize("mode", [Mode.INTER, Mode.RTR],
                         ids=["inter", "rtr"])
def test_tracing_is_invisible_across_modes(mode):
    """RTR's element-grain messaging exercises the densest event
    stream (per-element sends with rtr provenance)."""
    cp = compile_program(stencil1d_source(64, 2),
                         Options(nprocs=4, mode=mode))
    _assert_invisible(
        _run(cp, None, trace=False), _run(cp, None, trace=True),
        mode.value,
    )


def test_traced_compile_output_identical(monkeypatch):
    """Compiling with a tracer yields the same node program text and
    report as compiling without (decision hooks only observe).  The
    memo cache is disabled so both compilations actually run."""
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
    src = dgefa_source(16)
    opts = Options(nprocs=4, mode=Mode.INTER)
    plain = compile_program(src, opts)
    from repro.obs import Tracer

    traced = compile_program(src, opts, trace=Tracer())
    assert plain.text() == traced.text()
    assert plain.report.distributions == traced.report.distributions
    assert plain.report.comm_placements == traced.report.comm_placements
