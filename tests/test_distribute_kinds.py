"""CYCLIC / BLOCK_CYCLIC(k) end-to-end, and the ``--distribute``
override flag.

Each distribution kind is exercised two ways and both must agree with
sequential execution:

* written in the source program's DISTRIBUTE statement, and
* injected over a block-written program with ``--distribute``
  (``Options.distribute``) — which must also produce *identical*
  compiled text and results to the source-edited program, since the
  override is defined as a pre-analysis DISTRIBUTE rewrite.

The flag's error paths (unknown array, unknown kind, bad block size,
malformed spec) are pinned with their messages: the auto-tuner emits
these flags, so a user must be able to paste a reported plan back in
and get a real diagnostic when they typo it.
"""

import numpy as np
import pytest

from repro.apps.adi import adi_source
from repro.apps.stencil import stencil1d_source
from repro.core import CompileError, Options, compile_program
from repro.core.model import DistOverride, parse_distribute_args
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import FREE

KINDS = ["block", "cyclic", "block_cyclic:2", "block_cyclic:4"]


def _spec_text(kind: str) -> str:
    """The DISTRIBUTE spec spelling of a --distribute kind."""
    if kind.startswith("block_cyclic:"):
        return f"block_cyclic({kind.split(':')[1]})"
    return kind


def _verify(cp, src, arrays):
    seq = run_sequential(parse(src))
    res = cp.run(cost=FREE, timeout_s=60.0)
    for name in arrays:
        assert np.allclose(res.gathered(name), seq.arrays[name].data), \
            f"{name} diverged from sequential execution"
    return res


class TestKindsFromSource:
    """Every kind parses from DISTRIBUTE and executes correctly."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("nprocs", [3, 4])
    def test_stencil_kind_matches_sequential(self, kind, nprocs):
        src = stencil1d_source(48, 3).replace(
            "distribute x(block)",
            f"distribute x({_spec_text(kind)})",
        )
        assert _spec_text(kind) in src
        cp = compile_program(src, Options(nprocs=nprocs))
        _verify(cp, src, ["x", "y"])


class TestOverrideFlag:
    @pytest.mark.parametrize("kind", KINDS)
    def test_override_matches_sequential(self, kind):
        src = stencil1d_source(48, 3)
        opts = Options(nprocs=4,
                       distribute=parse_distribute_args([f"x={kind}"]))
        cp = compile_program(src, opts)
        _verify(cp, src, ["x", "y"])

    @pytest.mark.parametrize("kind", KINDS)
    def test_override_identical_to_source_edit(self, kind):
        """The override is exactly a DISTRIBUTE rewrite: compiled node
        text is byte-identical to editing the source."""
        base = stencil1d_source(48, 3)
        edited = base.replace("distribute x(block)",
                              f"distribute x({_spec_text(kind)})")
        cp_override = compile_program(
            base,
            Options(nprocs=4,
                    distribute=parse_distribute_args([f"x={kind}"])),
        )
        cp_edited = compile_program(edited, Options(nprocs=4))
        assert cp_override.text() == cp_edited.text()

    def test_elastic_multidim_override(self):
        """A single-kind override on a 2-D remapped app retargets only
        the distributed axis of each per-phase DISTRIBUTE."""
        src = adi_source(16, 2)
        opts = Options(nprocs=4,
                       distribute=parse_distribute_args(["a=cyclic"]))
        cp = compile_program(src, opts)
        _verify(cp, src, ["a"])

    def test_later_override_wins(self):
        ovs = parse_distribute_args(["x=block", "x=cyclic"])
        assert ovs == (DistOverride("x", (("cyclic", None),)),)


class TestOverrideErrors:
    def test_unknown_array(self):
        src = stencil1d_source(32, 2)
        with pytest.raises(CompileError,
                           match=r"unknown array\(s\) zz"):
            compile_program(
                src,
                Options(distribute=parse_distribute_args(["zz=cyclic"])),
            )

    @pytest.mark.parametrize("bad, msg", [
        ("x=diagonal", "unknown kind 'diagonal'"),
        ("x=block_cyclic", "block_cyclic needs a block size"),
        ("x=block_cyclic:zero", "not an integer"),
        ("x=block_cyclic:0", "must be >= 1"),
        ("x=block:4", "block takes no parameter"),
        ("cyclic", "expected ARRAY=KIND"),
        ("x=", "empty spec"),
        ("1x=cyclic", "not an array name"),
    ])
    def test_parse_errors(self, bad, msg):
        with pytest.raises(ValueError, match=msg):
            DistOverride.parse(bad)


class TestOverrideCli:
    @pytest.fixture
    def src_file(self, tmp_path):
        p = tmp_path / "stencil.fd"
        p.write_text(stencil1d_source(48, 3))
        return str(p)

    def test_cli_override_runs_and_verifies(self, src_file, capsys):
        from repro.cli import main

        assert main([src_file, "--distribute", "x=cyclic", "--run",
                     "--verify", "--no-text", "--cost", "free"]) == 0
        out = capsys.readouterr().out
        assert "! verify x: OK" in out

    def test_cli_bad_kind_is_usage_error(self, src_file, capsys):
        from repro.cli import main

        assert main([src_file, "--distribute", "x=diagonal",
                     "--no-text"]) == 2
        err = capsys.readouterr().err
        assert "unknown kind 'diagonal'" in err

    def test_cli_unknown_array_fails_compilation(self, src_file,
                                                 capsys):
        from repro.cli import main

        assert main([src_file, "--distribute", "zz=cyclic",
                     "--no-text"]) == 1
        err = capsys.readouterr().err
        assert "unknown array(s) zz" in err
