"""Differential tests: vectorized vs scalar execution, bit for bit.

The fast path's contract is not "numerically close" — every array
element, every virtual clock, and every statistic must be *identical*
whether a loop nest executed as numpy slice assignments or as one
closure call per element.  These tests enforce the contract on the full
application suite (all modes the apps compile under) and on randomly
generated affine loop programs, including programs the vectorizer must
reject or bail out of at run time.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.adi import adi_source
from repro.apps.cg import cg_source
from repro.apps.dgefa import (
    dgefa_dgesl_source,
    dgefa_pivot_source,
    dgefa_source,
    make_dgefa_init,
)
from repro.apps.paper_figures import fig1_source, fig4_source, fig15_source
from repro.apps.stencil import stencil1d_source, stencil2d_source
from repro.apps.wave import wave_source
from repro.core.driver import compile_program
from repro.core.options import Mode, Options
from repro.interp import run_sequential
from repro.interp.vectorize import enabled
from repro.lang import parse

#: the stats that must match exactly between the two execution paths
STAT_FIELDS = (
    "messages", "bytes", "collectives", "collective_bytes",
    "remaps", "remap_bytes", "guards",
)


def assert_bit_identical(cp, init_fn=None, timeout_s=30.0):
    """Run *cp* on both paths and require identical arrays and stats."""
    kw = {"init_fn": init_fn} if init_fn else {}
    r_vec = cp.run(vectorize=True, timeout_s=timeout_s, **kw)
    r_sca = cp.run(vectorize=False, timeout_s=timeout_s, **kw)
    for f in STAT_FIELDS:
        assert getattr(r_vec.stats, f) == getattr(r_sca.stats, f), f
    assert r_vec.stats.proc_times == r_sca.stats.proc_times
    assert r_vec.stats.proc_work == r_sca.stats.proc_work
    for name in r_vec.frames[0].arrays:
        for rk, (fv, fs) in enumerate(zip(r_vec.frames, r_sca.frames)):
            assert np.array_equal(
                fv.arrays[name].data, fs.arrays[name].data, equal_nan=True
            ), f"array {name} differs on rank {rk}"


APP_CASES = [
    ("dgefa", dgefa_source(32), Mode.INTER, make_dgefa_init(32)),
    ("dgefa_pivot", dgefa_pivot_source(24), Mode.INTER, make_dgefa_init(24)),
    ("dgefa_dgesl", dgefa_dgesl_source(24), Mode.INTER, make_dgefa_init(24)),
    ("adi", adi_source(32, 2), Mode.INTER, None),
    ("cg", cg_source(32, 4), Mode.INTER, None),
    ("stencil1d", stencil1d_source(128, 4), Mode.INTER, None),
    ("stencil2d", stencil2d_source(24, 2), Mode.INTER, None),
    ("wave", wave_source(64, 4), Mode.INTER, None),
    ("fig1", fig1_source(64), Mode.INTER, None),
    ("fig4", fig4_source(64), Mode.INTER, None),
    ("fig15", fig15_source(64, 4), Mode.INTER, None),
    ("dgefa_intra", dgefa_source(24), Mode.INTRA, make_dgefa_init(24)),
    ("stencil_rtr", stencil1d_source(32, 2), Mode.RTR, None),
    ("dgefa_rtr", dgefa_source(12), Mode.RTR, make_dgefa_init(12)),
]


@pytest.mark.parametrize(
    "src,mode,init", [c[1:] for c in APP_CASES], ids=[c[0] for c in APP_CASES]
)
def test_apps_bit_identical(src, mode, init):
    cp = compile_program(src, Options(nprocs=4, mode=mode))
    assert_bit_identical(cp, init)


# -- randomly generated affine loop programs ------------------------------

N = 32          # array extent

_consts = st.sampled_from(["0.5", "1.5", "2.0", "3.0", "0.25"])
_loop_subs = st.sampled_from(["i", "i + 1", "i - 1", "i + 2", "i - 2"])
_any_subs = st.sampled_from(
    ["i", "i + 1", "i - 1", "i + 2", "i - 2", "5", "t"]
)


def _expr_strategy(ref):
    """An affine expression grammar over the given array-ref strategy."""
    leaf = st.one_of(_consts, st.just("i"), ref)

    def node(children):
        binop = st.tuples(
            children, st.sampled_from(["+", "-", "*"]), children
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")
        neg = children.map(lambda e: f"(-{e})")
        call = st.tuples(
            st.sampled_from(["min", "max"]), children, children
        ).map(lambda t: f"{t[0]}({t[1]}, {t[2]})")
        absc = children.map(lambda e: f"abs({e})")
        div = children.map(lambda e: f"({e} / 2.0)")
        return st.one_of(binop, neg, call, absc, div)

    return st.recursive(leaf, node, max_leaves=6)


def _program(stmts, nprocs, steps):
    body = "\n".join(stmts)
    return f"""
program h
real a({N}), b({N}), c({N})
parameter (n$proc = {nprocs})
align b(i) with a(i)
align c(i) with a(i)
distribute a(block)
do t = 1, {steps}
  do i = 3, {N - 2}
{body}
  enddo
enddo
end
"""


#: Distributed (SPMD) programs stay inside the subset the comm planner
#: compiles correctly (the shape of every real app in the suite):
#: writes target ``a``/``b``, each at ONE loop-carrying subscript per
#: program, and reads of a written array use that same subscript (the
#: stencil/copyback pattern); the never-written ``c`` is read freely,
#: including at loop-invariant subscripts.  Outside that subset — a
#: loop writing one array at two different offsets, reading it at a
#: different offset than it writes, or accessing it loop-invariantly —
#: the planner deadlocks (identically on both execution paths; verified
#: pre-existing on the seed).  The sequential generator below covers
#: those shapes, where no comm planning is involved.


@st.composite
def affine_programs(draw):
    nprocs = draw(st.sampled_from([2, 4]))
    steps = draw(st.integers(1, 2))
    target_sub = {"a": draw(_loop_subs), "b": draw(_loop_subs)}
    ref = st.one_of(
        st.sampled_from(("a", "b")).map(lambda n: (n, target_sub[n])),
        st.tuples(st.just("c"), _any_subs),
    ).map(lambda p: f"{p[0]}({p[1]})")
    exprs = draw(
        st.lists(
            st.tuples(st.sampled_from(("a", "b")), _expr_strategy(ref)),
            min_size=1, max_size=4,
        )
    )
    stmts = [f"    {arr}({target_sub[arr]}) = {e}" for arr, e in exprs]
    return _program(stmts, nprocs, steps), nprocs


@settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(affine_programs())
def test_random_affine_programs_bit_identical(case):
    src, nprocs = case
    cp = compile_program(src, Options(nprocs=nprocs, mode=Mode.INTER))
    assert_bit_identical(cp, timeout_s=5.0)


#: Sequential programs: the full grammar — any array read or written at
#: any subscript, including the loop-invariant shapes that force the
#: vectorizer's runtime fallback (invariant read inside the written
#: range, unequal write offsets, invariant write targets).
_seq_ref = st.tuples(st.sampled_from(("a", "b", "c")), _any_subs).map(
    lambda p: f"{p[0]}({p[1]})"
)
_seq_stmt = st.tuples(
    st.sampled_from(("a", "b", "c")), _any_subs, _expr_strategy(_seq_ref)
).map(lambda t: f"    {t[0]}({t[1]}) = {t[2]}")


@st.composite
def sequential_programs(draw):
    steps = draw(st.integers(1, 2))
    stmts = draw(st.lists(_seq_stmt, min_size=1, max_size=4))
    return _program(stmts, 1, steps)


@settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(sequential_programs())
def test_random_sequential_programs_bit_identical(src):
    prog = parse(src)
    f_vec = run_sequential(prog, vectorize=True)
    f_sca = run_sequential(prog, vectorize=False)
    for name in f_sca.arrays:
        assert np.array_equal(
            f_vec.arrays[name].data, f_sca.arrays[name].data, equal_nan=True
        ), f"array {name} differs"


# -- the switch itself ----------------------------------------------------

class TestSwitch:
    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        assert enabled() is True
        for off in ("0", "false", "NO", "off"):
            monkeypatch.setenv("REPRO_VECTORIZE", off)
            assert enabled() is False
        monkeypatch.setenv("REPRO_VECTORIZE", "1")
        assert enabled() is True

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        assert enabled(True) is True
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        assert enabled(False) is False

    def test_env_flag_forces_scalar_run(self, monkeypatch):
        """REPRO_VECTORIZE=0 changes the executed path, not the result."""
        src = stencil1d_source(64, 2)
        cp = compile_program(src, Options(nprocs=2, mode=Mode.INTER))
        monkeypatch.setenv("REPRO_VECTORIZE", "0")
        r_off = cp.run()
        monkeypatch.delenv("REPRO_VECTORIZE", raising=False)
        r_on = cp.run()
        assert np.array_equal(r_on.gathered("x"), r_off.gathered("x"))
        assert r_on.stats.proc_times == r_off.stats.proc_times
