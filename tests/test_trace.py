"""Trace-schema validation for the observability subsystem.

Every traced run must produce a self-consistent event stream: rank
events carry ``kind``/``rank``/``ts``, per-rank virtual timestamps are
monotone, compiler phase spans nest properly, the Chrome export is
valid trace-event JSON, the communication matrix reconciles with the
run statistics, and the critical path tiles ``[0, final clock]``
exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.apps.dgefa import dgefa_source, make_dgefa_init
from repro.apps.stencil import stencil1d_source
from repro.core.driver import compile_program
from repro.core.options import Mode, Options
from repro.machine import Machine
from repro.obs import (
    Tracer,
    chrome_trace,
    comm_hotspots,
    comm_matrix,
    critical_path,
    path_length,
    profile_report,
    resolve_trace,
)

RANK_KINDS = {
    "net.send", "net.recv", "net.exchange", "coll",
    "sched.dispatch", "sched.block", "sched.unblock",
    "interp.vec", "interp.cache", "fault",
}

GRID = [(s, v) for s in ("coop", "threads") for v in (False, True)]
GRID_IDS = [f"{s}-{'vec' if v else 'scalar'}" for s, v in GRID]


def _traced_run(src, *, scheduler="coop", vectorize=False, init_fn=None,
                nprocs=4, mode=Mode.INTER):
    cp = compile_program(src, Options(nprocs=nprocs, mode=mode))
    extra = {"init_fn": init_fn} if init_fn is not None else {}
    return cp.run(trace=True, scheduler=scheduler, vectorize=vectorize,
                  **extra)


# ---------------------------------------------------------------------------
# enabling / disabling
# ---------------------------------------------------------------------------


class TestResolve:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert resolve_trace(None) is None
        # an untraced Machine may still carry a flight recorder on
        # .tracer, but no *user* tracer is attached
        assert Machine(2).user_tracer is None
        cp = compile_program(stencil1d_source(32, 1),
                             Options(nprocs=2, mode=Mode.INTER))
        assert cp.run().trace is None

    def test_explicit_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        t = Tracer()
        assert resolve_trace(t) is t
        assert isinstance(resolve_trace(True), Tracer)
        assert resolve_trace(False) is None
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert isinstance(resolve_trace(None), Tracer)
        # False beats the environment
        assert resolve_trace(False) is None
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert resolve_trace(None) is None

    def test_machine_attaches_tracer(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        m = Machine(3, trace=True)
        assert m.tracer is not None
        assert m.tracer.nprocs == 3
        assert m.tracer.meta["nprocs"] == 3


# ---------------------------------------------------------------------------
# rank-event schema
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheduler,vectorize", GRID, ids=GRID_IDS)
class TestRankEvents:
    def test_schema_and_monotone_clocks(self, scheduler, vectorize):
        res = _traced_run(stencil1d_source(64, 2), scheduler=scheduler,
                          vectorize=vectorize)
        tr = res.trace
        assert isinstance(tr, Tracer)
        assert tr.nprocs == 4
        assert tr.event_count() > 0
        for rank, evs in enumerate(tr.rank_events):
            last = -1.0
            for ev in evs:
                assert ev["kind"] in RANK_KINDS
                assert ev["rank"] == rank
                assert ev["ts"] >= 0.0
                assert ev.get("dur", 0.0) >= 0.0
                assert ev["ts"] >= last, \
                    f"rank {rank}: non-monotone virtual time"
                last = ev["ts"]

    def test_message_lifecycle_fields(self, scheduler, vectorize):
        res = _traced_run(stencil1d_source(64, 2), scheduler=scheduler,
                          vectorize=vectorize)
        tr = res.trace
        sends = tr.events("net.send")
        recvs = tr.events("net.recv")
        assert sends and recvs
        assert len(sends) == res.stats.messages
        assert len(recvs) == len(sends)  # no faults: every send matched
        for ev in sends:
            assert 0 <= ev["dst"] < 4 and ev["bytes"] > 0
            assert ev["avail"] >= ev["ts"]
            assert ev["origin"]  # codegen provenance threaded through
        for ev in recvs:
            assert ev["avail"] >= ev["sent_at"]
            assert ev["wait"] >= 0.0
            assert ev["ts"] + ev["dur"] >= ev["avail"]

    def test_scheduler_and_interp_events(self, scheduler, vectorize):
        res = _traced_run(stencil1d_source(64, 2), scheduler=scheduler,
                          vectorize=vectorize)
        tr = res.trace
        sched_evs = tr.events("sched.dispatch")
        if scheduler == "coop":
            # one dispatch per scheduler hand-off, as counted by stats
            assert len(sched_evs) == res.stats.dispatches
            assert tr.events("sched.block")
        else:
            assert not sched_evs  # thread oracle has no dispatcher
        vec_evs = tr.events("interp.vec")
        if vectorize:
            assert vec_evs
            for ev in vec_evs:
                assert ev["n"] > 0 and ev["unit"]
        else:
            assert not vec_evs
        cache = tr.events("interp.cache")
        hits = sum(1 for ev in cache if ev["hit"])
        misses = sum(1 for ev in cache if not ev["hit"])
        assert hits == res.stats.comm_cache_hits
        assert misses == res.stats.comm_cache_misses


# ---------------------------------------------------------------------------
# compiler phase spans
# ---------------------------------------------------------------------------


class TestCompilerEvents:
    def test_phases_nest(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        tracer = Tracer()
        compile_program(stencil1d_source(64, 2),
                        Options(nprocs=4, mode=Mode.INTER), trace=tracer)
        phases = [e for e in tracer.host_events
                  if e["kind"] == "compile.phase"]
        assert {p["name"] for p in phases} >= {
            "compile", "parse", "interprocedural-analysis",
            "alias-analysis", "initial-distributions", "codegen",
            "procedure",
        }
        stack: list[dict] = []
        for p in phases:
            assert p["t1"] is not None and p["t1"] >= p["t0"]
            while stack and p["depth"] <= stack[-1]["depth"]:
                stack.pop()
            if stack:  # properly nested inside the enclosing span
                assert p["depth"] == stack[-1]["depth"] + 1
                assert p["t0"] >= stack[-1]["t0"]
                assert p["t1"] <= stack[-1]["t1"]
            else:
                assert p["depth"] == 0
            stack.append(p)

    def test_decisions_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        tracer = Tracer()
        compile_program(dgefa_source(16),
                        Options(nprocs=4, mode=Mode.INTER), trace=tracer)
        decisions = [e for e in tracer.host_events
                     if e["kind"] == "compile.decision"]
        names = {d["name"] for d in decisions}
        assert "distribution" in names
        assert "comm-placement" in names
        dist = [d for d in decisions if d["name"] == "distribution"]
        assert all("proc" in d and "array" in d and "dist" in d
                   for d in dist)

    def test_cache_hit_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "1")
        src = stencil1d_source(48, 1)
        opts = Options(nprocs=4, mode=Mode.INTER)
        compile_program(src, opts)  # prime
        tracer = Tracer()
        compile_program(src, opts, trace=tracer)
        names = [e["name"] for e in tracer.host_events
                 if e["kind"] == "compile.decision"]
        assert names == ["compile.cache-hit"]


# ---------------------------------------------------------------------------
# chrome export
# ---------------------------------------------------------------------------


class TestChromeExport:
    def test_valid_trace_event_json(self):
        tracer = Tracer()
        cp = compile_program(stencil1d_source(64, 2),
                             Options(nprocs=4, mode=Mode.INTER),
                             trace=tracer)
        cp.run(trace=tracer)
        doc = json.loads(json.dumps(chrome_trace(tracer), default=str))
        evs = doc["traceEvents"]
        assert evs
        for ev in evs:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            assert ev["ph"] in ("X", "i", "M")
            if ev["ph"] != "M":
                assert ev["ts"] >= 0.0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
        # both tracks present: compiler (pid 0) and simulation (pid 1)
        assert {e["pid"] for e in evs if e["ph"] != "M"} == {0, 1}
        assert any(e["ph"] == "M" for e in evs)  # track names

    def test_cli_writes_loadable_trace(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "prog.fd"
        f.write_text(stencil1d_source(64, 2))
        trace_file = tmp_path / "trace.json"
        stats_file = tmp_path / "stats.json"
        rc = main([str(f), "--no-text", "--trace", str(trace_file),
                   "--profile", "--stats-json", str(stats_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "communication hot spots" in out
        doc = json.loads(trace_file.read_text())
        assert doc["traceEvents"]
        stats = json.loads(stats_file.read_text())
        assert stats["messages"] >= 0 and "time_us" in stats
        assert stats["proc_times"]


# ---------------------------------------------------------------------------
# profile consumers
# ---------------------------------------------------------------------------


class TestProfile:
    def test_matrix_reconciles_with_stats(self):
        res = _traced_run(stencil1d_source(64, 2))
        tr = res.trace
        msgs, byts = comm_matrix(tr)
        assert sum(map(sum, msgs)) == res.stats.messages
        assert sum(map(sum, byts)) == res.stats.bytes
        for r in range(4):
            assert msgs[r][r] == 0  # no self-messages

    def test_hotspots_have_provenance(self):
        res = _traced_run(stencil1d_source(64, 2))
        rows = comm_hotspots(res.trace)
        assert rows
        for row in rows:
            assert row["count"] > 0 and row["bytes"] >= 0
            assert row["proc"] != "?"  # origin carries the procedure

    @pytest.mark.parametrize("scheduler,vectorize", GRID, ids=GRID_IDS)
    def test_critical_path_tiles_makespan(self, scheduler, vectorize):
        res = _traced_run(dgefa_source(16), scheduler=scheduler,
                          vectorize=vectorize,
                          init_fn=make_dgefa_init(16))
        segs = critical_path(res.trace, res.stats.proc_times)
        T = res.stats.time_us
        assert segs
        tol = 1e-6 * max(1.0, T)
        assert abs(path_length(segs) - T) <= tol
        assert abs(segs[0]["t0"]) <= tol
        assert abs(segs[-1]["t1"] - T) <= tol
        for a, b in zip(segs, segs[1:]):  # time-contiguous chain
            assert abs(a["t1"] - b["t0"]) <= tol

    def test_profile_report_renders(self):
        res = _traced_run(stencil1d_source(64, 2))
        text = profile_report(res.trace, res.stats)
        assert "communication hot spots" in text
        assert "communication matrix" in text
        assert "virtual-time critical path" in text
