"""Smoke tests: every example script runs to completion and prints its
headline results (small sizes where parameterizable)."""

import runpy
import sys

import pytest


def run_example(path, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("examples/quickstart.py", capsys=capsys)
        assert "matches sequential execution: True" in out
        assert "run-time res" in out

    def test_dgefa_case_study_small(self, capsys):
        out = run_example("examples/dgefa_case_study.py", ["12", "4"],
                          capsys=capsys)
        assert out.count("True") >= 4
        assert "hand-coded" in out

    def test_dynamic_redistribution(self, capsys):
        out = run_example("examples/dynamic_redistribution_adi.py",
                          capsys=capsys)
        assert "16d" in out
        assert "mark x as (block)" in out

    def test_recompilation_demo(self, capsys):
        out = run_example("examples/recompilation_demo.py", capsys=capsys)
        assert "initial build" in out
        assert "no edit" in out

    @pytest.mark.slow
    def test_stencil_pipeline(self, capsys):
        out = run_example("examples/stencil_pipeline.py", capsys=capsys)
        assert "1-D relaxation" in out

    def test_cg_solver(self, capsys):
        out = run_example("examples/cg_solver.py", ["48", "6", "4"],
                          capsys=capsys)
        assert "matches sequential execution: True" in out
        assert "identical on all nodes: True" in out
