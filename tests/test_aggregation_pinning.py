"""Tests for message aggregation (§5.4) and for dependence pinning of
delayed communication (a write anywhere in the procedure that feeds the
nonlocal read keeps the message local, placed after the write)."""

import numpy as np

from repro.core import Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE


def check(src, arrays, P=4, mode=Mode.INTER):
    seq = run_sequential(parse(src))
    cp = compile_program(src, Options(nprocs=P, mode=mode))
    res = cp.run(cost=FREE)
    for arr in arrays:
        assert np.allclose(res.gathered(arr), seq.arrays[arr].data), arr
    return cp, res


MULTIARRAY = """
program p
real u(64), v(64), w(64)
align v(i) with u(i)
align w(i) with u(i)
distribute u(block)
do i = 1, 64
  u(i) = i * 1.0
  v(i) = 65.0 - i
  w(i) = 0.0
enddo
call combine(u, v, w)
end

subroutine combine(u, v, w)
real u(64), v(64), w(64)
do i = 1, 63
  w(i) = u(i + 1) + v(i + 1)
enddo
end
"""


class TestAggregation:
    def test_two_arrays_one_message(self):
        """u and v strips to the same neighbour combine into one packed
        message per pair."""
        cp, res = check(MULTIARRAY, ["w"])
        assert res.stats.messages == 3  # one *packed* message per pair
        assert res.stats.bytes == 3 * 2 * 8  # both strips' bytes

    def test_packed_nodes_emitted(self):
        cp, _ = check(MULTIARRAY, ["w"])
        main = cp.program.main
        packs = [s for s in A.walk_stmts(main.body)
                 if isinstance(s, (A.SendPack, A.RecvPack))]
        assert len(packs) == 2  # one guarded send pack + one recv pack

    def test_pack_order_consistent(self):
        cp, _ = check(MULTIARRAY, ["w"])
        main = cp.program.main
        send = next(s for s in A.walk_stmts(main.body)
                    if isinstance(s, A.SendPack))
        recv = next(s for s in A.walk_stmts(main.body)
                    if isinstance(s, A.RecvPack))
        assert [a for a, _ in send.parts] == [a for a, _ in recv.parts]

    def test_three_arrays(self):
        src = MULTIARRAY.replace(
            "w(i) = u(i + 1) + v(i + 1)",
            "w(i) = u(i + 1) + v(i + 1) + w(i + 1)",
        )
        cp, res = check(src, ["w"])
        assert res.stats.messages == 3  # still one pack per pair

    def test_different_deltas_not_merged(self):
        src = MULTIARRAY.replace(
            "w(i) = u(i + 1) + v(i + 1)",
            "w(i) = u(i + 1) + v(i - 1)",
        ).replace("do i = 1, 63", "do i = 2, 63")
        cp, res = check(src, ["w"])
        # opposite directions: different neighbours, two messages per
        # adjacent pair
        assert res.stats.messages == 6

    def test_print_shows_aggregate(self):
        cp, _ = check(MULTIARRAY, ["w"])
        text = cp.text()
        assert " + " in text and "aggregated" in text


class TestDependencePinning:
    TWO_PHASE = """
program p
real u(64), v(64)
align v(i) with u(i)
distribute u(block)
do i = 1, 64
  u(i) = i * 1.0
  v(i) = 65.0 - i
enddo
call step(u, v)
end

subroutine step(u, v)
real u(64), v(64)
do i = 1, 63
  u(i) = u(i) + 0.5 * v(i + 1)
enddo
do i = 1, 63
  v(i) = v(i) + 0.5 * u(i + 1)
enddo
end
"""

    def test_cross_loop_dependence_correct(self):
        """The second loop reads u written by the first: the u-strip
        exchange must stay inside the callee, after the first loop
        (regression test for the export-past-a-write bug)."""
        check(self.TWO_PHASE, ["u", "v"])

    def test_comm_placed_between_the_loops(self):
        cp, _ = check(self.TWO_PHASE, ["u", "v"])
        step = cp.program.unit("step")
        kinds = [
            ("loop" if isinstance(s, A.Do) else
             "comm" if isinstance(s, (A.Send, A.Recv, A.If)) else "other")
            for s in step.body
            if not isinstance(s, A.SetMyProc)
        ]
        assert kinds == ["loop", "comm", "comm", "loop"]

    def test_v_exchange_still_delayed(self):
        """v is only written *after* its read: the v-strip exchange has
        no pinning dependence and hoists to the caller."""
        cp, _ = check(self.TWO_PHASE, ["u", "v"])
        main = cp.program.main
        sends = [s for s in A.walk_stmts(main.body)
                 if isinstance(s, (A.Send, A.SendPack))]
        assert len(sends) == 1

    def test_write_after_read_does_not_pin(self):
        src = """
program p
real u(32), v(32)
align v(i) with u(i)
distribute u(block)
do i = 1, 32
  u(i) = i * 1.0
  v(i) = 0.0
enddo
call f(u, v)
end

subroutine f(u, v)
real u(32), v(32)
do i = 1, 31
  v(i) = u(i + 1)
enddo
do i = 1, 32
  u(i) = 0.0
enddo
end
"""
        cp, _ = check(src, ["u", "v"])
        f = cp.program.unit("f")
        # the u-read precedes the u-write: no true dependence, comm
        # hoists to the caller
        assert not any(
            isinstance(s, (A.Send, A.Recv)) for s in A.walk_stmts(f.body)
        )
