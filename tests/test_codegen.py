"""Unit tests for SPMD code generation building blocks: bound
arithmetic, guards, communication statement construction, run-time
resolution rewriting, and body rewriting."""

import pytest

from repro.analysis.rsd import RSD, Range, SymDim, rsd
from repro.core.codegen import (
    RewritePlan,
    TagAllocator,
    block_lb,
    block_ub,
    build_bcast,
    build_shift,
    guard_expr,
    owner_rank_expr,
    reduce_block_bounds,
    reduce_cyclic_bounds,
    rewrite_body,
    rtr_rewrite_assign,
    section_subs,
    uses_myproc,
)
from repro.core.communication import CommAction
from repro.core.model import Constraint, PendingComm
from repro.dist.distribution import DimDistribution
from repro.lang import ast as A
from repro.lang.printer import expr_str


def block_dim(n=100, P=4, lo=1):
    return DimDistribution.make("block", lo, n, P)


def cyclic_dim(n=100, P=4, lo=1):
    return DimDistribution.make("cyclic", lo, n, P)


def eval_with(e, myp, env=None):
    """Evaluate a generated expression for a concrete my$p."""
    from repro.analysis.symbolics import eval_int
    from repro.runtime.intrinsics import PURE_INTRINSICS

    def ev(x):
        if isinstance(x, A.Num):
            return x.value
        if isinstance(x, A.Var):
            if x.name == "my$p":
                return myp
            return (env or {})[x.name]
        if isinstance(x, A.BinOp):
            a, b = ev(x.left), ev(x.right)
            if x.op == "+":
                return a + b
            if x.op == "-":
                return a - b
            if x.op == "*":
                return a * b
            if x.op == "==":
                return a == b
            if x.op == "/":
                return a // b
            raise KeyError(x.op)
        if isinstance(x, A.CallExpr):
            return PURE_INTRINSICS[x.name](*[ev(a) for a in x.args])
        raise TypeError(x)

    return ev(e)


class TestBoundExpressions:
    def test_block_lb_ub_per_proc(self):
        dim = block_dim()
        for p in range(4):
            assert eval_with(block_lb(dim), p) == 1 + p * 25
            assert eval_with(block_ub(dim), p) == min((p + 1) * 25, 100)

    def test_block_ub_clamps_to_dim(self):
        dim = block_dim(n=90, P=4)  # blocks of 23
        assert eval_with(block_ub(dim), 3) == 90

    def test_owner_rank_block(self):
        dim = block_dim()
        e = owner_rank_expr(dim, A.Num(26))
        assert eval_with(e, 0) == 1

    def test_owner_rank_cyclic(self):
        dim = cyclic_dim()
        e = owner_rank_expr(dim, A.Var("k"))
        assert eval_with(e, 0, {"k": 6}) == 1
        assert eval_with(e, 0, {"k": 5}) == 0


class TestLoopReduction:
    def loop(self, lo=1, hi=95):
        return A.Do("i", A.Num(lo), A.Num(hi), A.ONE, [])

    def test_fig2_bounds(self):
        c = Constraint(block_dim(), A.Var("i"), "i", 0)
        lo, hi, step = reduce_block_bounds(self.loop(), c)
        # do i = 1+my$p*25, min(95, ...)
        for p, (el, eh) in enumerate([(1, 25), (26, 50), (51, 75),
                                      (76, 95)]):
            assert eval_with(lo, p) == el
            assert eval_with(hi, p) == eh
        assert step == A.ONE

    def test_offset_shifts_bounds(self):
        # statement writes x(i+10): proc owns [lb, ub] so i in [lb-10..]
        c = Constraint(block_dim(), A.BinOp("+", A.Var("i"), A.Num(10)),
                       "i", 10)
        lo, hi, _ = reduce_block_bounds(self.loop(1, 90), c)
        assert eval_with(lo, 1) == 16   # 26 - 10
        assert eval_with(hi, 1) == 40   # 50 - 10

    def test_cyclic_start_and_stride(self):
        c = Constraint(cyclic_dim(), A.Var("i"), "i", 0)
        lo, hi, step = reduce_cyclic_bounds(self.loop(1, 100), c)
        assert expr_str(step) == "4"
        for p in range(4):
            start = eval_with(lo, p)
            assert (start - 1) % 4 == p
            assert 1 <= start <= 4

    def test_cyclic_symbolic_lower_bound(self):
        """dgefa's j loop: do j = k+1, n partitioned cyclically."""
        loop = A.Do("j", A.BinOp("+", A.Var("k"), A.Num(1)), A.Var("n"),
                    A.ONE, [])
        c = Constraint(cyclic_dim(16, 4), A.Var("j"), "j", 0)
        lo, hi, step = reduce_cyclic_bounds(loop, c)
        for p in range(4):
            for k in (1, 5, 10):
                start = eval_with(lo, p, {"k": k, "n": 16})
                assert start >= k + 1
                assert (start - 1) % 4 == p


class TestGuards:
    def test_guard_block(self):
        c = Constraint(block_dim(), A.Var("k"), "k", 0)
        g = guard_expr(c)
        assert eval_with(g, 1, {"k": 30}) is True
        assert eval_with(g, 0, {"k": 30}) is False

    def test_guard_cyclic(self):
        c = Constraint(cyclic_dim(), A.Var("k"), "k", 0)
        g = guard_expr(c)
        assert eval_with(g, 1, {"k": 6}) is True
        assert eval_with(g, 2, {"k": 6}) is False


class TestCommConstruction:
    def action(self, kind, dim, section, delta=0, at=None):
        p = PendingComm("x", kind, 0, dim, section, delta=delta, at=at)
        return CommAction(p, anchor=None, level=0)

    def test_shift_positive_block(self):
        act = self.action("shift", block_dim(), rsd((6, 100)), delta=5)
        stmts = build_shift(act, TagAllocator())
        assert len(stmts) == 2
        send_if, recv_if = stmts
        assert isinstance(send_if, A.If) and isinstance(recv_if, A.If)
        assert expr_str(send_if.cond) == "my$p > 0"
        assert expr_str(recv_if.cond) == "my$p < 3"
        send = send_if.then_body[0]
        assert isinstance(send, A.Send)
        assert expr_str(send.dest) == "my$p - 1"

    def test_shift_negative_block(self):
        act = self.action("shift", block_dim(), rsd((1, 95)), delta=-5)
        stmts = build_shift(act, TagAllocator())
        send_if, recv_if = stmts
        assert expr_str(send_if.cond) == "my$p < 3"
        send = send_if.then_body[0]
        assert expr_str(send.dest) == "my$p + 1"

    def test_shift_cyclic_strided(self):
        act = self.action("shift", cyclic_dim(), rsd((2, 100)), delta=1)
        stmts = build_shift(act, TagAllocator())
        send, recv = stmts
        assert isinstance(send, A.Send) and isinstance(recv, A.Recv)
        sub = send.subs[0]
        assert isinstance(sub, A.Triplet)
        assert expr_str(sub.step) == "4"

    def test_shift_cyclic_multiple_of_p_is_local(self):
        act = self.action("shift", cyclic_dim(P=4), rsd((5, 100)), delta=4)
        assert build_shift(act, TagAllocator()) == []

    def test_bcast(self):
        dim = cyclic_dim(16, 4)
        sec = RSD((SymDim(A.BinOp("+", A.Var("k"), A.ONE), A.Var("n")),
                   SymDim(A.Var("k"))))
        act = self.action("bcast", dim, sec, at=A.Var("k"))
        (b,) = build_bcast(act, TagAllocator())
        assert isinstance(b, A.Bcast)
        assert "mod" in expr_str(b.root)

    def test_unique_tags(self):
        tags = TagAllocator()
        a1 = self.action("shift", block_dim(), rsd((6, 100)), delta=5)
        a2 = self.action("shift", block_dim(), rsd((6, 100)), delta=5)
        s1 = build_shift(a1, tags)
        s2 = build_shift(a2, tags)
        t1 = s1[0].then_body[0].tag
        t2 = s2[0].then_body[0].tag
        assert t1 != t2


class TestSectionSubs:
    def test_numeric_ranges(self):
        subs = section_subs(rsd((26, 30), 7, (1, 99, 2)))
        assert expr_str(subs[0]) == "26:30"
        assert expr_str(subs[1]) == "7"
        assert expr_str(subs[2]) == "1:99:2"

    def test_symbolic_dims(self):
        sec = RSD((SymDim(A.Var("k")),
                   SymDim(A.Var("a"), A.Var("b"))))
        subs = section_subs(sec)
        assert expr_str(subs[0]) == "k"
        assert expr_str(subs[1]) == "a:b"


class TestRTRRewrite:
    def make_assign(self):
        prog = ("program p\nreal x(20), y(20)\n"
                "x(3) = f(y(7))\nend\n")
        return parse_body(prog)[0]

    def test_distributed_lhs_and_rhs(self):
        s = self.make_assign()
        out = rtr_rewrite_assign(s, {"x", "y"}, TagAllocator())
        # send-guard, then owner-guarded recv+assign
        assert len(out) == 2
        assert isinstance(out[0], A.If)
        assert isinstance(out[1], A.If)
        inner = out[1].then_body
        assert isinstance(inner[-1], A.Assign)

    def test_replicated_lhs_broadcasts(self):
        prog = "program p\nreal y(20)\ns = y(7)\nend\n"
        s = parse_body(prog)[0]
        out = rtr_rewrite_assign(s, {"y"}, TagAllocator())
        assert isinstance(out[0], A.Bcast)
        assert isinstance(out[1], A.Assign)

    def test_replicated_reads_untouched(self):
        prog = "program p\nreal x(20), w(20)\nx(3) = w(2)\nend\n"
        s = parse_body(prog)[0]
        out = rtr_rewrite_assign(s, {"x"}, TagAllocator())
        # no send for w (replicated); just the owner-guarded assign
        assert len(out) == 1


def parse_body(src):
    from repro.lang import parse

    return parse(src).main.body


class TestRewriteBody:
    def test_insert_before_and_after(self):
        body = parse_body("program p\na = 1\nb = 2\nend\n")
        plan = RewritePlan()
        marker1 = A.Continue()
        marker2 = A.Continue()
        plan.insert_before[id(body[1])] = [marker1]
        plan.insert_after[id(body[0])] = [marker2]
        out = rewrite_body(body, plan)
        assert out[1] is marker2
        assert out[2] is marker1

    def test_replace(self):
        body = parse_body("program p\na = 1\nend\n")
        plan = RewritePlan()
        plan.replace[id(body[0])] = [A.Continue(), A.Continue()]
        out = rewrite_body(body, plan)
        assert len(out) == 2

    def test_guard_wrapping(self):
        body = parse_body("program p\nreal x(100)\nx(5) = 1\nend\n")
        plan = RewritePlan()
        c = Constraint(block_dim(), A.Num(5), None, 0)
        plan.guard_stmt[id(body[0])] = c
        out = rewrite_body(body, plan)
        assert isinstance(out[0], A.If)
        assert out[0].then_body[0] is body[0]

    def test_directives_dropped(self):
        body = parse_body(
            "program p\nreal x(10)\ndistribute x(block)\nx(1) = 0\nend\n"
        )
        out = rewrite_body(body, RewritePlan())
        assert all(not isinstance(s, A.Distribute) for s in out)

    def test_nested_insertion(self):
        body = parse_body(
            "program p\ndo i = 1, 3\na = i\nenddo\nend\n"
        )
        inner = body[0].body[0]
        plan = RewritePlan()
        marker = A.Continue()
        plan.insert_before[id(inner)] = [marker]
        rewrite_body(body, plan)
        assert body[0].body[0] is marker


class TestUsesMyproc:
    def test_detects_in_expressions(self):
        body = parse_body("program p\nk = my$p + 1\nend\n")
        assert uses_myproc(body)

    def test_detects_in_comm(self):
        body = [A.Send("x", [A.Num(1)], A.var("my$p"), 0)]
        assert uses_myproc(body)

    def test_negative(self):
        assert not uses_myproc(parse_body("program p\na = 1\nend\n"))
