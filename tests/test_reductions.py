"""Tests for reduction recognition (sum / min / max over distributed
arrays -> partitioned partial results + global combine)."""

import numpy as np
import pytest

from repro.core import Mode, Options, compile_program
from repro.core.reductions import (
    _split_reduction_expr,
    recognize_reduction,
)
from repro.interp import run_sequential
from repro.lang import ast as A
from repro.lang import parse
from repro.machine import FREE


def run_and_check(src, scalar, P=4):
    seq = run_sequential(parse(src))
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    res = cp.run(cost=FREE)
    for fr in res.frames:
        assert fr.scalars[scalar] == pytest.approx(seq.scalars[scalar])
    return cp, res


SUM_SRC = """
program p
real x({n})
distribute x({dist})
do i = 1, {n}
  x(i) = i * 0.5
enddo
s = {init}
do i = 1, {n}
  s = s + x(i)
enddo
end
"""


class TestSumReduction:
    def test_block_sum(self):
        src = SUM_SRC.format(n=100, dist="block", init="0.0")
        cp, res = run_and_check(src, "s")
        assert res.stats.collectives == 1
        assert res.stats.messages == 0
        assert not cp.report.rtr_fallbacks

    def test_cyclic_sum(self):
        src = SUM_SRC.format(n=64, dist="cyclic", init="0.0")
        cp, res = run_and_check(src, "s")
        assert res.stats.collectives == 1

    def test_nonzero_initial_value_counted_once(self):
        """The incoming value of s must not be multiplied by P."""
        src = SUM_SRC.format(n=40, dist="block", init="10.0")
        run_and_check(src, "s")

    def test_reversed_operands(self):
        src = (
            "program p\nreal x(32)\ndistribute x(block)\n"
            "do i = 1, 32\nx(i) = 1.0\nenddo\n"
            "s = 0.0\ndo i = 1, 32\ns = x(i) + s\nenddo\nend\n"
        )
        cp, res = run_and_check(src, "s")
        assert res.stats.collectives == 1

    @pytest.mark.parametrize("P", [1, 2, 3, 4, 5])
    def test_proc_counts(self, P):
        src = SUM_SRC.format(n=50, dist="block", init="2.5")
        run_and_check(src, "s", P=P)


class TestMinMaxReduction:
    def make(self, op):
        return (
            f"program p\nreal x(48)\ndistribute x(block)\n"
            f"do i = 1, 48\nx(i) = abs(24.5 - i)\nenddo\n"
            f"s = x(1)\ndo i = 1, 48\ns = {op}(s, x(i))\nenddo\nend\n"
        )

    def test_min(self):
        cp, res = run_and_check(self.make("min"), "s")
        assert res.stats.collectives >= 1

    def test_max(self):
        run_and_check(self.make("max"), "s")

    def test_min_initial_value_respected(self):
        src = (
            "program p\nreal x(16)\ndistribute x(block)\n"
            "do i = 1, 16\nx(i) = i + 100.0\nenddo\n"
            "s = 1.0\ndo i = 1, 16\ns = min(s, x(i))\nenddo\nend\n"
        )
        run_and_check(src, "s")  # result must stay 1.0 (the seed)


class TestRecognitionBoundaries:
    def test_non_reduction_not_recognized(self):
        e = parse("program p\ns = s * 2\nend\n").main.body[0].expr
        assert _split_reduction_expr("s", e) is None

    def test_accumulator_in_operand_rejected(self):
        src = (
            "program p\nreal x(16)\ndistribute x(block)\n"
            "s = 0.0\ndo i = 1, 16\ns = s + x(i) * s\nenddo\nend\n"
        )
        prog = parse(src)
        loop = prog.main.body[2]
        stmt = loop.body[0]
        from repro.core.partition import ArrayInfo
        from repro.dist import Distribution
        from repro.lang.ast import DistSpec

        dist = Distribution.from_specs([DistSpec("block")], [(1, 16)], 4)
        arrays = {"x": ArrayInfo("x", dist, 0)}
        assert recognize_reduction(stmt, [loop], arrays, {}, 0) is None

    def test_accumulator_used_elsewhere_rejected(self):
        src = (
            "program p\nreal x(16), y(16)\nalign y(i) with x(i)\n"
            "distribute x(block)\n"
            "s = 0.0\ndo i = 1, 16\ns = s + x(i)\ny(i) = s\nenddo\nend\n"
        )
        # y(i) = s makes each iteration's prefix sum observable: not a
        # reduction.  Must still compile (RTR fallback) and be correct.
        seq = run_sequential(parse(src))
        cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("y"), seq.arrays["y"].data)

    def test_replicated_array_not_a_reduction(self):
        src = (
            "program p\nreal w(16)\n"
            "do i = 1, 16\nw(i) = i * 1.0\nenddo\n"
            "s = 0.0\ndo i = 1, 16\ns = s + w(i)\nenddo\nend\n"
        )
        cp, res = run_and_check(src, "s")
        assert res.stats.collectives == 0  # fully replicated, no combine


class TestReductionInApplication:
    def test_dot_product_through_procedure(self):
        src = (
            "program p\nreal x(64), y(64)\nalign y(i) with x(i)\n"
            "distribute x(block)\n"
            "do i = 1, 64\nx(i) = i * 0.5\ny(i) = 65.0 - i\nenddo\n"
            "s = 0.0\n"
            "do i = 1, 64\ns = s + x(i) * y(i)\nenddo\nend\n"
        )
        cp, res = run_and_check(src, "s")
        assert res.stats.collectives == 1

    def test_norm_then_scale(self):
        src = (
            "program p\nreal x(32)\ndistribute x(block)\n"
            "do i = 1, 32\nx(i) = i * 1.0\nenddo\n"
            "s = 0.0\n"
            "do i = 1, 32\ns = s + x(i) * x(i)\nenddo\n"
            "r = sqrt(s)\n"
            "do i = 1, 32\nx(i) = x(i) / r\nenddo\nend\n"
        )
        seq = run_sequential(parse(src))
        cp = compile_program(src, Options(nprocs=4, mode=Mode.INTER))
        res = cp.run(cost=FREE)
        assert np.allclose(res.gathered("x"), seq.arrays["x"].data)
