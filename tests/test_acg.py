"""Tests for the augmented call graph (§5.1, Figure 5) and GMOD/GREF."""

import pytest

from repro.analysis.sideeffects import appear, compute_side_effects
from repro.callgraph.acg import ACG, CallGraphError
from repro.lang import ast as A
from repro.lang import parse

FIG4 = """
program p1
real x(100,100), y(100,100)
parameter (n$proc = 4)
align y(i, j) with x(j, i)
distribute x(block, :)
do i = 1, 100
s1: call f1(x, i)
enddo
do j = 1, 100
s2: call f1(y, j)
enddo
end

subroutine f1(z, i)
real z(100,100)
s3: call f2(z, i)
end

subroutine f2(z, i)
real z(100,100)
do k = 1, 100
  z(k, i) = f(z(k+5, i))
enddo
end
"""


class TestACGStructure:
    def test_fig5_shape(self):
        acg = ACG(parse(FIG4))
        assert set(acg.nodes) == {"p1", "f1", "f2"}
        assert acg.callees("p1") == {"f1"}
        assert acg.callees("f1") == {"f2"}
        assert acg.callees("f2") == set()

    def test_call_sites_carry_loops(self):
        acg = ACG(parse(FIG4))
        s1, s2 = acg.calls_from("p1")
        assert [l.var for l in s1.loops] == ["i"]
        assert [l.var for l in s2.loops] == ["j"]
        s3 = acg.calls_from("f1")[0]
        assert s3.loops == []

    def test_loop_nodes(self):
        acg = ACG(parse(FIG4))
        assert [l.var for l in acg.node("p1").loops] == ["i", "j"]
        assert [l.var for l in acg.node("f2").loops] == ["k"]

    def test_index_formal_annotation(self):
        """Formal i of F1 is bound to the index of P1's 1:100 loop."""
        acg = ACG(parse(FIG4))
        s1 = acg.calls_from("p1")[0]
        assert "i" in s1.index_formals
        li = s1.index_formals["i"]
        assert (li.lo, li.hi) == (A.Num(1), A.Num(100))

    def test_array_actual_binding(self):
        acg = ACG(parse(FIG4))
        s1, s2 = acg.calls_from("p1")
        assert s1.array_actuals == {"z": "x"}
        assert s2.array_actuals == {"z": "y"}
        assert not s1.reshaped

    def test_topological_orders(self):
        acg = ACG(parse(FIG4))
        topo = acg.topological_order()
        assert topo.index("p1") < topo.index("f1") < topo.index("f2")
        rev = acg.reverse_topological_order()
        assert rev.index("f2") < rev.index("f1") < rev.index("p1")

    def test_translate_expr(self):
        acg = ACG(parse(FIG4))
        s3 = acg.calls_from("f1")[0]
        # f2's `i + 5` translated to f1 terms is still `i + 5` (i -> i)
        got = s3.translate_expr(A.BinOp("+", A.Var("i"), A.Num(5)))
        assert got == A.BinOp("+", A.Var("i"), A.Num(5))
        s1 = acg.calls_from("p1")[0]
        # f1's formal z -> actual x at S1 (expression-level rename)
        got = s1.translate_expr(A.Var("z"))
        assert got == A.Var("x")


class TestACGErrors:
    def test_undefined_callee(self):
        with pytest.raises(CallGraphError, match="undefined"):
            ACG(parse("program p\ncall nope(x)\nend\n"))

    def test_arity_mismatch(self):
        src = "program p\ncall f(1, 2)\nend\nsubroutine f(a)\na = 0\nend\n"
        with pytest.raises(CallGraphError, match="passes 2"):
            ACG(parse(src))

    def test_recursion_rejected(self):
        src = (
            "program p\ncall f(1)\nend\n"
            "subroutine f(a)\ncall g(a)\nend\n"
            "subroutine g(a)\ncall f(a)\nend\n"
        )
        with pytest.raises(CallGraphError, match="recursive"):
            ACG(parse(src))

    def test_array_formal_scalar_actual(self):
        src = (
            "program p\ninteger k\ncall f(k)\nend\n"
            "subroutine f(a)\nreal a(10)\na(1) = 0\nend\n"
        )
        with pytest.raises(CallGraphError, match="non-array"):
            ACG(parse(src))

    def test_reshape_flagged(self):
        src = (
            "program p\nreal x(10, 10)\ncall f(x)\nend\n"
            "subroutine f(a)\nreal a(100)\na(1) = 0\nend\n"
        )
        acg = ACG(parse(src))
        assert acg.calls_from("p")[0].reshaped


class TestSideEffects:
    def test_direct_mod_ref(self):
        src = (
            "program p\nreal x(10), y(10)\ncall f(x, y)\nend\n"
            "subroutine f(a, b)\nreal a(10), b(10)\na(1) = b(2)\nend\n"
        )
        acg = ACG(parse(src))
        eff = compute_side_effects(acg)
        assert "a" in eff["f"].mod
        assert "b" in eff["f"].ref
        assert "b" not in eff["f"].mod

    def test_transitive_effects(self):
        src = (
            "program p\nreal x(10)\ncall f(x)\nend\n"
            "subroutine f(a)\nreal a(10)\ncall g(a)\nend\n"
            "subroutine g(c)\nreal c(10)\nc(1) = 2\nend\n"
        )
        acg = ACG(parse(src))
        eff = compute_side_effects(acg)
        assert "a" in eff["f"].mod          # through g
        assert "x" in eff["p"].mod          # through f -> g

    def test_appear_fig4(self):
        """Appear(F1) = {z} — only the array flows into cloning decisions."""
        acg = ACG(parse(FIG4))
        eff = compute_side_effects(acg)
        assert "z" in appear(acg, eff, "f1")
        assert "z" in appear(acg, eff, "f2")

    def test_expression_actual_is_ref_only(self):
        src = (
            "program p\ninteger n\ncall f(n + 1)\nend\n"
            "subroutine f(m)\ninteger m\nm = m + 1\nend\n"
        )
        acg = ACG(parse(src))
        eff = compute_side_effects(acg)
        assert "n" in eff["p"].ref
        assert "n" not in eff["p"].mod
