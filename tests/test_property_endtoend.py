"""Property-based end-to-end tests: randomly generated Fortran D
programs are compiled in every mode and executed; the distributed
results must equal sequential execution bit-for-bit.

This fuzzes the whole pipeline — parser, reaching decompositions,
partitioning, dependence analysis, communication generation, run-time
resolution fallback, the machine, and the interpreter — against the
one oracle that matters (sequential semantics).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DynOpt, Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import FREE

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_all_modes(src, arr, P, modes=(Mode.INTER, Mode.INTRA, Mode.RTR)):
    seq = run_sequential(parse(src)).arrays[arr].data
    for mode in modes:
        cp = compile_program(src, Options(nprocs=P, mode=mode))
        res = cp.run(cost=FREE, timeout_s=60)
        got = res.gathered(arr)
        assert np.allclose(got, seq), (
            f"{mode} mismatch\nsource:\n{src}\n"
            f"first diffs at {np.argwhere(~np.isclose(got, seq))[:5]}"
        )


@st.composite
def shift_program(draw):
    """dst(i) = f(src(i+delta)) through a procedure, random layout."""
    n = draw(st.integers(min_value=12, max_value=60))
    P = draw(st.integers(min_value=2, max_value=4))
    dist = draw(st.sampled_from(["block", "cyclic"]))
    delta = draw(st.integers(min_value=-4, max_value=4))
    same_array = draw(st.booleans())
    via_call = draw(st.booleans())
    lo = max(1, 1 - delta)
    hi = min(n, n - delta)
    if lo >= hi:
        lo, hi = 1, n
        delta = 0
    loop = f"do i = {lo}, {hi}\n{{body}}\nenddo"
    if same_array:
        body = f"x(i) = f(x(i + {delta}))" if delta >= 0 else \
            f"x(i) = f(x(i - {-delta}))"
        decls = f"real x({n})"
        align = ""
        args, formals, fdecls = "x", "x", f"real x({n})"
    else:
        body = f"y(i) = f(x(i + {delta}))" if delta >= 0 else \
            f"y(i) = f(x(i - {-delta}))"
        decls = f"real x({n}), y({n})"
        align = "align y(i) with x(i)\n"
        args, formals, fdecls = "x, y", "x, y", f"real x({n}), y({n})"
    kernel = loop.format(body=body)
    if via_call:
        src = (
            f"program p\n{decls}\n{align}distribute x({dist})\n"
            f"call work({args})\nend\n"
            f"subroutine work({formals})\n{fdecls}\n{kernel}\nend\n"
        )
    else:
        src = (
            f"program p\n{decls}\n{align}distribute x({dist})\n"
            f"{kernel}\nend\n"
        )
    arr = "x" if same_array else "y"
    return src, arr, P


@given(shift_program())
@settings(**SETTINGS)
def test_random_shift_programs_all_modes(case):
    src, arr, P = case
    run_all_modes(src, arr, P)


@st.composite
def two_phase_program(draw):
    """Random redistribution between two full-rewrite phases."""
    n = draw(st.integers(min_value=8, max_value=40))
    P = draw(st.integers(min_value=2, max_value=4))
    d1 = draw(st.sampled_from(["block", "cyclic"]))
    d2 = draw(st.sampled_from(["block", "cyclic"]))
    scale1 = draw(st.integers(min_value=1, max_value=5))
    steps = draw(st.integers(min_value=1, max_value=3))
    src = (
        f"program p\nreal x({n})\nparameter (t = {steps})\n"
        f"distribute x({d1})\n"
        f"do k = 1, t\n"
        f"call ph1(x)\ncall ph2(x)\n"
        f"enddo\nend\n"
        f"subroutine ph1(x)\nreal x({n})\n"
        f"do i = 1, {n}\nx(i) = x(i) + {scale1}.0\nenddo\nend\n"
        f"subroutine ph2(x)\nreal x({n})\ndistribute x({d2})\n"
        f"do i = 1, {n}\nx(i) = x(i) * 0.5\nenddo\nend\n"
    )
    return src, P


@given(two_phase_program(),
       st.sampled_from([DynOpt.NONE, DynOpt.LIVE, DynOpt.KILLS]))
@settings(**SETTINGS)
def test_random_redistribution_programs(case, dynopt):
    src, P = case
    seq = run_sequential(parse(src)).arrays["x"].data
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER,
                                      dynopt=dynopt))
    res = cp.run(cost=FREE, timeout_s=60)
    assert np.allclose(res.gathered("x"), seq), src


@st.composite
def twod_program(draw):
    """2-D row- or column-distributed kernel through a call chain."""
    n = draw(st.integers(min_value=8, max_value=24))
    P = draw(st.integers(min_value=2, max_value=4))
    rowwise = draw(st.booleans())
    delta = draw(st.integers(min_value=1, max_value=3))
    dist = "block, :" if rowwise else ":, block"
    if rowwise:
        kernel = (
            f"do j = 1, {n}\ndo i = 1, {n - delta}\n"
            f"b(i, j) = f(a(i + {delta}, j))\nenddo\nenddo"
        )
    else:
        kernel = (
            f"do j = 1, {n - delta}\ndo i = 1, {n}\n"
            f"b(i, j) = f(a(i, j + {delta}))\nenddo\nenddo"
        )
    src = (
        f"program p\nreal a({n},{n}), b({n},{n})\n"
        f"align b(i, j) with a(i, j)\n"
        f"distribute a({dist})\n"
        f"call work(a, b)\nend\n"
        f"subroutine work(a, b)\nreal a({n},{n}), b({n},{n})\n"
        f"{kernel}\nend\n"
    )
    return src, P


@given(twod_program())
@settings(**SETTINGS)
def test_random_2d_programs(case):
    src, P = case
    run_all_modes(src, "b", P, modes=(Mode.INTER, Mode.INTRA))


@given(
    n=st.integers(min_value=10, max_value=50),
    P=st.integers(min_value=2, max_value=6),
    dist=st.sampled_from(["block", "cyclic", "block_cyclic(3)"]),
)
@settings(**SETTINGS)
def test_random_local_updates_never_communicate(n, P, dist):
    """A purely local update (identity subscripts) must produce zero
    messages under INTER for any distribution kind."""
    src = (
        f"program p\nreal x({n})\ndistribute x({dist})\n"
        f"do i = 1, {n}\nx(i) = x(i) * 2.0 + 1.0\nenddo\nend\n"
    )
    seq = run_sequential(parse(src)).arrays["x"].data
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    res = cp.run(cost=FREE, timeout_s=60)
    assert np.allclose(res.gathered("x"), seq)
    assert res.stats.messages == 0
    assert res.stats.collectives == 0


@st.composite
def common_program(draw):
    """Random pipeline over a COMMON global: init phase, k work phases
    with random shifts, all communicating through the global."""
    n = draw(st.integers(min_value=16, max_value=48))
    P = draw(st.integers(min_value=2, max_value=4))
    dist = draw(st.sampled_from(["block", "cyclic"]))
    nphases = draw(st.integers(min_value=1, max_value=3))
    deltas = draw(st.lists(
        st.integers(min_value=0, max_value=3),
        min_size=nphases, max_size=nphases,
    ))
    units = [
        f"program p\nreal g({n})\ncommon /c/ g\ndistribute g({dist})\n"
        f"call init\n"
        + "".join(f"call ph{k}\n" for k in range(nphases))
        + "end\n",
        f"subroutine init\nreal g({n})\ncommon /c/ g\n"
        f"do i = 1, {n}\ng(i) = i * 1.0\nenddo\nend\n",
    ]
    for k, d in enumerate(deltas):
        hi = n - d
        units.append(
            f"subroutine ph{k}\nreal g({n})\ncommon /c/ g\n"
            f"do i = 1, {hi}\ng(i) = f(g(i + {d}))\nenddo\nend\n"
        )
    return "\n".join(units), P


@given(common_program())
@settings(**SETTINGS)
def test_random_common_pipelines(case):
    src, P = case
    run_all_modes(src, "g", P, modes=(Mode.INTER, Mode.RTR))


@st.composite
def reduction_program(draw):
    n = draw(st.integers(min_value=8, max_value=64))
    P = draw(st.integers(min_value=2, max_value=4))
    dist = draw(st.sampled_from(["block", "cyclic"]))
    op = draw(st.sampled_from(["sum", "min", "max"]))
    init = draw(st.floats(min_value=-4, max_value=4,
                          allow_nan=False, allow_infinity=False))
    stmt = {
        "sum": "s = s + x(i) * 0.5",
        "min": "s = min(s, x(i))",
        "max": "s = max(x(i), s)",
    }[op]
    src = (
        f"program p\nreal x({n})\ndistribute x({dist})\n"
        f"do i = 1, {n}\nx(i) = f(i * 1.0)\nenddo\n"
        f"s = {init!r}\n"
        f"do i = 1, {n}\n{stmt}\nenddo\nend\n"
    )
    return src, P


@given(reduction_program())
@settings(**SETTINGS)
def test_random_reductions(case):
    src, P = case
    seq = run_sequential(parse(src))
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    res = cp.run(cost=FREE, timeout_s=60)
    import pytest as _pytest

    for fr in res.frames:
        assert fr.scalars["s"] == _pytest.approx(seq.scalars["s"])


@st.composite
def condition_program(draw):
    """Branches whose conditions read distributed elements."""
    n = draw(st.integers(min_value=8, max_value=32))
    P = draw(st.integers(min_value=2, max_value=4))
    dist = draw(st.sampled_from(["block", "cyclic"]))
    c = draw(st.integers(min_value=1, max_value=8))
    c = min(c, n)
    thresh = draw(st.integers(min_value=0, max_value=2 * n))
    src = (
        f"program p\nreal x({n})\ndistribute x({dist})\n"
        f"do i = 1, {n}\nx(i) = i * 2.0\nenddo\n"
        f"hit = 0.0\n"
        f"if (x({c}) > {thresh}.0) then\n"
        f"hit = 1.0\n"
        f"x({min(c + 1, n)}) = x({c}) + 100.0\n"
        f"endif\nend\n"
    )
    return src, P


@given(condition_program())
@settings(**SETTINGS)
def test_random_condition_reads(case):
    src, P = case
    seq = run_sequential(parse(src))
    for mode in (Mode.INTER, Mode.RTR):
        cp = compile_program(src, Options(nprocs=P, mode=mode))
        res = cp.run(cost=FREE, timeout_s=60)
        assert np.allclose(res.gathered("x"), seq.arrays["x"].data), src
        for fr in res.frames:
            assert fr.scalars["hit"] == seq.scalars["hit"], src
