"""Topology abstraction and cost-model boundary cases.

Covers the satellite fixes and the new interconnect layer:

* ``tree_stages``/collective/barrier costs at the degenerate P=1 and
  zero-byte boundaries (a single rank communicates with nobody — its
  collectives must cost exactly 0);
* per-topology ``hops``/``link_path`` structure (hypercube e-cube
  routing, mesh/torus dimension order, fat-tree up-over-down);
* topology-aware collective trees and hop-charged transfer times;
* deterministic link-contention serialization (``LinkClock``) and its
  rejection on the nondeterministic thread backend;
* ``resolve_topology`` parsing: names, ``:contention`` flags,
  ``REPRO_TOPOLOGY``, instance pass-through, and error cases;
* end-to-end: runs under every topology produce the same arrays and
  message counts as uniform — only virtual time may differ — and
  coop/event agree bit for bit under contention.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.stencil import stencil1d_source
from repro.core import Mode, Options, compile_program
from repro.machine import (
    FREE,
    IPSC860,
    CostModel,
    FatTreeTopology,
    HypercubeTopology,
    LinkClock,
    Machine,
    Mesh2DTopology,
    Topology,
    Torus2DTopology,
    UniformTopology,
    resolve_topology,
    tree_stages,
)

ALL_NAMES = ["uniform", "hypercube", "mesh2d", "torus2d", "fattree"]


class TestCostModelBoundaries:
    """Satellite fix: P=1 collectives and barriers must cost 0."""

    def test_tree_stages(self):
        assert tree_stages(1) == 0
        assert tree_stages(2) == 1
        assert tree_stages(4) == 2
        assert tree_stages(5) == 3
        assert tree_stages(8) == 3
        assert tree_stages(1024) == 10

    def test_single_rank_collective_free(self):
        for cost in (IPSC860, CostModel(alpha=7.0, beta=0.1)):
            assert cost.collective_cost(1, 0) == 0.0
            assert cost.collective_cost(1, 4096) == 0.0
            assert cost.barrier_cost(1) == 0.0

    def test_single_rank_free_on_every_topology(self):
        for name in ALL_NAMES:
            topo = resolve_topology(name, 1)
            assert topo.collective_cost(IPSC860, 1, 1024) == 0.0, name
            assert topo.barrier_cost(IPSC860, 1) == 0.0, name

    def test_zero_byte_collective_pays_latency_only(self):
        c = IPSC860
        assert c.collective_cost(4, 0) == tree_stages(4) * c.alpha
        assert c.barrier_cost(4) == tree_stages(4) * c.alpha

    def test_p2_collective_one_stage(self):
        c = CostModel(alpha=10.0, beta=0.5)
        assert c.collective_cost(2, 8) == 10.0 + 0.5 * 8


class TestHypercube:
    def test_hops_hamming(self):
        t = HypercubeTopology(8)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 1) == 1
        assert t.hops(0, 7) == 3
        assert t.hops(5, 6) == 2  # 101 ^ 110 = 011

    def test_ecube_path_flips_low_bits_first(self):
        t = HypercubeTopology(8)
        assert t.link_path(0, 7) == [(0, 1), (1, 3), (3, 7)]
        assert t.link_path(3, 3) == []

    def test_path_length_matches_hops(self):
        t = HypercubeTopology(16)
        for s in range(16):
            for d in range(16):
                assert len(t.link_path(s, d)) == t.hops(s, d)

    def test_collective_matches_flat_tree(self):
        # dimension exchange: nearest-neighbour stages, so the cost
        # equals the uniform binomial tree on power-of-two P
        t = HypercubeTopology(16)
        assert t.collective_cost(IPSC860, 16, 64) == \
            IPSC860.collective_cost(16, 64)


class TestMeshAndTorus:
    def test_mesh_hops_manhattan(self):
        t = Mesh2DTopology(16)  # 4x4
        assert (t.rows, t.cols) == (4, 4)
        assert t.hops(0, 15) == 6  # (0,0) -> (3,3)
        assert t.hops(0, 3) == 3
        assert t.hops(5, 5) == 0

    def test_torus_wraps_shortest_direction(self):
        t = Torus2DTopology(16)
        assert t.hops(0, 3) == 1   # wrap along the row
        assert t.hops(0, 12) == 1  # wrap along the column
        assert t.hops(0, 15) == 2

    def test_mesh_path_is_x_then_y(self):
        t = Mesh2DTopology(16)
        assert t.link_path(0, 5) == [(0, 1), (1, 5)]

    def test_path_endpoints_chain(self):
        for t in (Mesh2DTopology(12), Torus2DTopology(12)):
            for s in range(12):
                for d in range(12):
                    path = t.link_path(s, d)
                    assert len(path) == t.hops(s, d)
                    here = s
                    for a, b in path:
                        assert a == here
                        here = b
                    if path:
                        assert here == d

    def test_non_square_factorization(self):
        t = Mesh2DTopology(6)
        assert (t.rows, t.cols) == (2, 3)
        with pytest.raises(ValueError, match="does not tile"):
            Mesh2DTopology(6, shape=(4, 2))

    def test_mesh_collective_costs_more_than_torus(self):
        # wraparound shortens stage distances only when a stage's
        # partner is more than half the axis away, i.e. on
        # non-power-of-two axes (6x6 here); on power-of-two axes the
        # two agree exactly
        m, t = Mesh2DTopology(36), Torus2DTopology(36)
        assert m.collective_cost(IPSC860, 36, 8) > \
            t.collective_cost(IPSC860, 36, 8)
        m64, t64 = Mesh2DTopology(64), Torus2DTopology(64)
        assert m64.collective_cost(IPSC860, 64, 8) == \
            t64.collective_cost(IPSC860, 64, 8)
        assert m64.barrier_cost(IPSC860, 64) == \
            m64.collective_cost(IPSC860, 64, 0)


class TestFatTree:
    def test_hops_up_over_down(self):
        t = FatTreeTopology(16, radix=4)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 1) == 2   # same leaf switch
        assert t.hops(0, 15) == 4  # through the root

    def test_path_through_switches(self):
        t = FatTreeTopology(16, radix=4)
        assert t.link_path(0, 1) == [(0, ("sw", 1, 0)), (("sw", 1, 0), 1)]
        path = t.link_path(0, 5)
        assert path[0] == (0, ("sw", 1, 0))
        assert path[-1] == (("sw", 1, 1), 5)
        assert len(path) == t.hops(0, 5)

    def test_bad_radix(self):
        with pytest.raises(ValueError, match="radix"):
            FatTreeTopology(8, radix=1)


class TestTransferTime:
    def test_uniform_bit_identical_to_costmodel(self):
        t = UniformTopology(8)
        for nbytes in (0, 8, 4096):
            assert t.transfer_time(IPSC860, nbytes, 0, 7) == \
                IPSC860.transfer_time(nbytes)

    def test_extra_hops_charged(self):
        t = HypercubeTopology(8)
        base = IPSC860.transfer_time(64)
        assert t.transfer_time(IPSC860, 64, 0, 1) == base
        assert t.transfer_time(IPSC860, 64, 0, 7) == \
            base + 2 * IPSC860.hop


class TestLinkClock:
    def test_no_contention_matches_estimate(self):
        lc = LinkClock()
        t = HypercubeTopology(8)
        # lone message over 3 hops: start + 2*hop + wire
        arr = lc.traverse(t.link_path(0, 7), 100.0, 50.0, hop_time=5.0)
        assert arr == 100.0 + 2 * 5.0 + 50.0

    def test_shared_link_serializes(self):
        lc = LinkClock()
        path = [(0, 1)]
        a = lc.traverse(path, 0.0, 10.0)
        b = lc.traverse(path, 0.0, 10.0)  # queues behind the first
        assert a == 10.0
        assert b == 20.0
        # a disjoint link is unaffected
        assert lc.traverse([(2, 3)], 0.0, 10.0) == 10.0

    def test_contention_is_deterministic(self):
        def run():
            lc = LinkClock()
            t = Mesh2DTopology(16)
            return [lc.traverse(t.link_path(s, (s + 5) % 16),
                                float(s), 25.0, hop_time=5.0)
                    for s in range(16)]
        assert run() == run()


class TestResolveTopology:
    def test_default_uniform(self, monkeypatch):
        monkeypatch.delenv("REPRO_TOPOLOGY", raising=False)
        t = resolve_topology(None, 4)
        assert isinstance(t, UniformTopology)
        assert not t.contention
        assert t.describe() == "uniform"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TOPOLOGY", "torus2d:contention")
        t = resolve_topology(None, 16)
        assert isinstance(t, Torus2DTopology)
        assert t.contention
        assert t.describe() == "torus2d:contention"
        # explicit argument wins over the environment
        assert isinstance(resolve_topology("mesh2d", 16), Mesh2DTopology)

    def test_name_parsing(self):
        for name in ALL_NAMES:
            assert resolve_topology(name, 8).name == name
        t = resolve_topology("Hypercube:CONTENTION", 8)
        assert isinstance(t, HypercubeTopology) and t.contention

    def test_instance_passthrough(self):
        inst = HypercubeTopology(8)
        assert resolve_topology(inst, 8) is inst
        with pytest.raises(ValueError, match="built for P=8"):
            resolve_topology(inst, 16)

    def test_errors(self):
        with pytest.raises(ValueError, match="unknown topology"):
            resolve_topology("ring", 4)
        with pytest.raises(ValueError, match="unknown topology flag"):
            resolve_topology("mesh2d:adaptive", 4)

    def test_threads_rejects_contention(self):
        with pytest.raises(ValueError, match="deterministic scheduler"):
            Machine(4, scheduler="threads", topology="mesh2d:contention")
        # without contention, threads + topology is fine
        m = Machine(4, scheduler="threads", topology="mesh2d")
        assert m.topology.name == "mesh2d"


def _ping(ctx):
    """Rank 0 sends 64 B to the last rank; everyone barriers."""
    last = ctx.nprocs - 1
    if ctx.rank == 0:
        ctx.send(last, 0, b"x" * 64, 64)
    elif ctx.rank == last:
        ctx.recv(0, 0)
    ctx.barrier()
    return ctx.clock


class TestMachineIntegration:
    def test_hops_stretch_virtual_time(self):
        """The same program takes longer on a multi-hop network."""
        uni = Machine(8, IPSC860, topology="uniform")
        uni_clocks = uni.run(_ping)
        cube = Machine(8, IPSC860, topology="hypercube")
        cube_clocks = cube.run(_ping)
        # 0 -> 7 is 3 hops on the cube: 2 extra hops of latency, and
        # the stats must label the run with its topology
        assert cube_clocks[7] > uni_clocks[7]
        assert uni.stats.topology == "uniform"
        assert cube.stats.topology == "hypercube"
        assert uni.stats.messages == cube.stats.messages

    def test_free_costmodel_zero_time(self):
        m = Machine(4, FREE, topology="hypercube")
        clocks = m.run(_ping)
        assert clocks == [0.0] * 4

    @pytest.mark.parametrize("topology", ALL_NAMES)
    def test_apps_same_results_any_topology(self, topology):
        """Topology changes virtual time, never results or message
        counts."""
        cp = compile_program(stencil1d_source(64, 2),
                             Options(nprocs=4, mode=Mode.INTER))
        base = cp.run(timeout_s=30.0)
        res = cp.run(timeout_s=30.0, topology=topology)
        assert np.array_equal(res.gathered("x"), base.gathered("x"))
        assert res.stats.messages == base.stats.messages
        assert res.stats.bytes == base.stats.bytes
        assert res.stats.topology == topology

    @pytest.mark.parametrize("topology",
                             ["hypercube:contention",
                              "torus2d:contention"])
    def test_contention_bit_identical_coop_vs_event(self, topology):
        """Contention arrival times depend on send order; both
        deterministic backends must produce the same order and thus
        identical virtual clocks."""
        cp = compile_program(stencil1d_source(64, 2),
                             Options(nprocs=4, mode=Mode.INTER))
        a = cp.run(timeout_s=30.0, scheduler="coop", topology=topology)
        b = cp.run(timeout_s=30.0, scheduler="event", topology=topology)
        assert a.stats.proc_times == b.stats.proc_times
        assert a.stats.messages == b.stats.messages
        assert np.array_equal(a.gathered("x"), b.gathered("x"))
        # and each backend repeats itself exactly
        a2 = cp.run(timeout_s=30.0, scheduler="coop", topology=topology)
        assert a.stats.proc_times == a2.stats.proc_times
