"""Tests for reaching decompositions (§5.2, Fig. 6-7) and procedure
cloning (Fig. 8)."""

import pytest

from repro.apps import FIG4
from repro.callgraph.acg import ACG
from repro.core.cloning import clone_program
from repro.core.options import Options
from repro.core.reaching import ReachingError, analyze_procedure, compute_reaching
from repro.dist import TOP, Distribution
from repro.lang import ast as A
from repro.lang import parse
from repro.lang.ast import DistSpec


def opts(P=4):
    return Options(nprocs=P)


def dists_str(pr, array):
    return sorted(str(d) for d in pr.reaching_dists(array))


class TestLocalReaching:
    def test_distribute_generates_fact(self):
        src = "program p\nreal x(100)\ndistribute x(block)\nx(1) = 0\nend\n"
        prog = parse(src)
        pr = analyze_procedure(prog.main, opts())
        assign = prog.main.body[1]
        dists = pr.dists_of("x", assign)
        assert len(dists) == 1
        d = next(iter(dists))
        assert isinstance(d, Distribution)
        assert str(d) == "(block)"

    def test_redistribute_kills_previous(self):
        src = (
            "program p\nreal x(100)\ndistribute x(block)\nx(1) = 0\n"
            "distribute x(cyclic)\nx(2) = 0\nend\n"
        )
        prog = parse(src)
        pr = analyze_procedure(prog.main, opts())
        first, second = prog.main.body[1], prog.main.body[3]
        assert dists_str_of(pr, "x", first) == ["(block)"]
        assert dists_str_of(pr, "x", second) == ["(cyclic)"]

    def test_branch_join_unions(self):
        src = (
            "program p\nreal x(100)\ninteger c\nc = 1\n"
            "if (c > 0) then\ndistribute x(block)\nelse\n"
            "distribute x(cyclic)\nendif\nx(1) = 0\nend\n"
        )
        prog = parse(src)
        pr = analyze_procedure(prog.main, opts())
        use = prog.main.body[-1]
        assert dists_str_of(pr, "x", use) == ["(block)", "(cyclic)"]

    def test_formal_array_starts_top(self):
        src = "subroutine f(x)\nreal x(100)\nx(1) = 0\nend\n"
        prog = parse(src)
        pr = analyze_procedure(prog.units[0], opts())
        use = prog.units[0].body[0]
        assert pr.dists_of("x", use) == {TOP}

    def test_loop_body_sees_distribution(self):
        src = (
            "program p\nreal x(100)\ndistribute x(block)\n"
            "do i = 1, 10\nx(i) = 0\nenddo\nend\n"
        )
        prog = parse(src)
        pr = analyze_procedure(prog.main, opts())
        inner = prog.main.body[1].body[0]
        assert dists_str_of(pr, "x", inner) == ["(block)"]


def dists_str_of(pr, array, stmt):
    return sorted(str(d) for d in pr.dists_of(array, stmt))


class TestInterprocedural:
    def test_fig7_reaching_sets(self):
        """Reaching(F1) = row ∪ col decompositions for Z (Fig. 7)."""
        prog = parse(FIG4)
        acg = ACG(prog)
        result = compute_reaching(acg, opts())
        f1 = result.per_proc["f1"]
        assert dists_str(f1, "z") == ["(:, block)", "(block, :)"]
        f2 = result.per_proc["f2"]
        assert dists_str(f2, "z") == ["(:, block)", "(block, :)"]

    def test_callee_changes_undone_in_caller(self):
        """Fortran D scoping: F1's cyclic redistribution of X does not
        reach P1's references (§5.2)."""
        src = (
            "program p\nreal x(100)\ndistribute x(block)\n"
            "call f1(x)\nx(1) = 0\nend\n"
            "subroutine f1(x)\nreal x(100)\ndistribute x(cyclic)\n"
            "x(2) = 0\nend\n"
        )
        prog = parse(src)
        result = compute_reaching(ACG(prog), opts())
        p = result.per_proc["p"]
        use = prog.main.body[-1]
        assert dists_str_of(p, "x", use) == ["(block)"]
        f1 = result.per_proc["f1"]
        use_f1 = prog.unit("f1").body[-1]
        assert dists_str_of(f1, "x", use_f1) == ["(cyclic)"]

    def test_top_resolved_through_chain(self):
        src = (
            "program p\nreal x(100)\ndistribute x(cyclic)\ncall f1(x)\nend\n"
            "subroutine f1(a)\nreal a(100)\ncall f2(a)\nend\n"
            "subroutine f2(b)\nreal b(100)\nb(1) = 0\nend\n"
        )
        result = compute_reaching(ACG(parse(src)), opts())
        assert dists_str(result.per_proc["f2"], "b") == ["(cyclic)"]

    def test_symbolic_bounds_resolved_by_constants(self):
        """Interprocedural constant propagation lets a(n, n) resolve."""
        src = (
            "program p\nreal x(64, 64)\ndistribute x(block, :)\n"
            "call f(x, 64)\nend\n"
            "subroutine f(a, n)\nreal a(n, n)\ninteger n\n"
            "a(1, 1) = 0\nend\n"
        )
        result = compute_reaching(ACG(parse(src)), opts())
        assert dists_str(result.per_proc["f"], "a") == ["(block, :)"]

    def test_symbolic_distribute_without_constants_raises(self):
        src = (
            "subroutine f(a, n)\nreal a(n, n)\ninteger n\n"
            "distribute a(block, :)\na(1, 1) = 0\nend\n"
        )
        prog = parse(src)
        with pytest.raises(ReachingError, match="symbolic"):
            analyze_procedure(prog.units[0], opts())


class TestCloning:
    def test_fig8_clones_f1_f2(self):
        out = clone_program(parse(FIG4), opts())
        names = out.program.names()
        assert "f1$1" in names and "f2$1" in names
        assert out.clones == {"f1": ["f1$1"], "f2": ["f2$1"]}

    def test_clone_reaching_unique(self):
        out = clone_program(parse(FIG4), opts())
        for name in ("f1", "f2", "f1$1", "f2$1"):
            pr = out.reaching.per_proc[name]
            assert len(pr.reaching_dists("z")) == 1, name

    def test_call_sites_redirected(self):
        out = clone_program(parse(FIG4), opts())
        acg = out.acg
        callees = {c.callee for c in acg.calls_from("p1")}
        assert callees == {"f1", "f1$1"}

    def test_same_decomposition_shares_clone(self):
        src = (
            "program p\nreal x(100), y(100)\n"
            "align y(i) with x(i)\ndistribute x(block)\n"
            "call f(x)\ncall f(y)\nend\n"
            "subroutine f(a)\nreal a(100)\na(1) = 0\nend\n"
        )
        out = clone_program(parse(src), opts())
        assert out.clones == {}
        assert out.program.names() == ["p", "f"]

    def test_cloning_disabled_by_option(self):
        o = opts()
        o.enable_cloning = False
        out = clone_program(parse(FIG4), o)
        assert out.clones == {}

    def test_growth_cap(self):
        o = opts()
        o.clone_growth_limit = 1.0  # any growth exceeds the cap
        out = clone_program(parse(FIG4), o)
        assert out.growth_capped
        assert out.program.names() == ["p1", "f1", "f2"]

    def test_filter_avoids_cloning_unreferenced_arrays(self):
        """Filter/Appear (§5.2): differing decompositions of an array the
        callee never touches do not force a clone."""
        src = (
            "program p\nreal x(100), y(100, 100)\n"
            "distribute x(block)\ndistribute y(:, block)\n"
            "call f(x, y)\n"
            "distribute x(cyclic)\n"
            "call f(x, y)\nend\n"
            "subroutine f(a, b)\nreal a(100), b(100, 100)\n"
            "b(1, 1) = 2\nend\n"   # uses only b; a's decomposition differs
        )
        out = clone_program(parse(src), opts())
        assert out.clones == {}
