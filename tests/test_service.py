"""Compile-service tests: protocol framing, the summary store, the
incremental service compiler's byte-identity with the whole-program
driver, daemon/client round trips, and the CLI surface.

The load-bearing invariant everywhere: the service is an *accelerator*,
never a semantic layer — its output is byte-identical to a cold
in-process ``compile_program`` (program text, compile report, and run
results), whether procedures came from the store, a worker, or the
in-daemon fallback.
"""

import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.apps import (
    adi_source,
    cg_source,
    dgefa_dgesl_source,
    stencil2d_source,
    wave_source,
)
from repro.cli import main as cli_main
from repro.core import Mode, Options, compile_program
from repro.core.driver import _compile_cache
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import FREE
from repro.obs import Tracer
from repro.service import (
    CompileClient,
    CompileDaemon,
    ServiceCompiler,
    ServiceError,
    SummaryStore,
    WorkerPool,
    compile_with_fallback,
    resolve_server,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    options_from_wire,
    options_to_wire,
    pack_blob,
    recv_frame,
    send_frame,
    unpack_blob,
)
from repro.service.store import ProcSummary, opts_fingerprint


BASE = """
program p
real x(100)
distribute x(block)
call init(x)
call smooth(x)
end

subroutine init(x)
real x(100)
do i = 1, 100
  x(i) = i * 1.0
enddo
end

subroutine smooth(x)
real x(100)
do i = 1, 95
  x(i) = f(x(i + 5))
enddo
end
"""

#: internal leaf edit: init's exports unchanged, callers keep their code
EDIT_LEAF = BASE.replace("x(i) = i * 1.0", "x(i) = i * 2.0")

#: smooth's shift distance changed: its exports change, main recompiles
EDIT_SHIFT = BASE.replace("x(i) = f(x(i + 5))", "x(i) = f(x(i + 3))")


def sock_path(tmp_path, name="d.sock"):
    """A socket path short enough for AF_UNIX's ~108-byte limit."""
    p = tmp_path / name
    if len(str(p)) < 90:
        return str(p)
    import tempfile

    return os.path.join(tempfile.mkdtemp(prefix="fdc"), name)


@pytest.fixture
def no_memo(monkeypatch):
    """Disable the compile memo so 'cold in-process compile' is real."""
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "ping", "n": 3})
            assert recv_frame(b) == {"op": "ping", "n": 3}
        finally:
            a.close()
            b.close()

    def test_oversized_length_refused(self):
        a, b = socket.socketpair()
        try:
            a.sendall((1 << 30).to_bytes(4, "big") + b"xx")
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_garbage_payload_refused(self):
        a, b = socket.socketpair()
        try:
            a.sendall((4).to_bytes(4, "big") + b"\xff\xfe\x00\x01")
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame(self):
        a, b = socket.socketpair()
        try:
            a.sendall((100).to_bytes(4, "big") + b"short")
            a.close()
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            b.close()

    def test_deadline_expires(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(TimeoutError):
                recv_frame(b, deadline=time.monotonic() + 0.1)
        finally:
            a.close()
            b.close()

    def test_options_wire_roundtrip(self):
        opts = Options(nprocs=8, mode=Mode.INTRA, strict=True,
                       delay_communication=False)
        back = options_from_wire(options_to_wire(opts))
        assert back == opts

    def test_blob_roundtrip(self):
        obj = {"arr": [1, 2, 3], "opts": Options()}
        assert unpack_blob(pack_blob(obj)) == obj


# ---------------------------------------------------------------------------
# summary store
# ---------------------------------------------------------------------------


def _dummy_summary(name="f"):
    proc = parse(f"subroutine {name}(x)\nreal x(10)\nend").units[0]
    from repro.core.options import CompileReport

    return ProcSummary(name=name, proc=proc, exports=None, tag_count=2,
                       fragment=CompileReport())


class TestSummaryStore:
    def test_memory_roundtrip(self):
        s = SummaryStore()
        key = SummaryStore.key("o", "s", "i")
        assert s.load(key) is None
        s.store(key, _dummy_summary())
        assert s.load(key).name == "f"
        assert s.counters["hits"] == 1
        assert s.counters["misses"] == 1

    def test_disk_persistence_across_instances(self, tmp_path):
        d = str(tmp_path / "store")
        key = SummaryStore.key("o", "s", "i")
        SummaryStore(d).store(key, _dummy_summary("g"))
        fresh = SummaryStore(d)
        assert fresh.load(key).name == "g"
        assert fresh.counters["disk_hits"] == 1

    def test_truncated_entry_is_silent_miss(self, tmp_path):
        d = str(tmp_path / "store")
        key = SummaryStore.key("o", "s", "i")
        SummaryStore(d).store(key, _dummy_summary())
        (path,) = [p for p in os.listdir(d)]
        with open(os.path.join(d, path), "r+b") as fh:
            fh.truncate(10)
        fresh = SummaryStore(d)
        assert fresh.load(key) is None
        assert fresh.counters["corrupt"] == 1
        # the corrupt entry was dropped; a re-store works
        fresh.store(key, _dummy_summary())
        assert SummaryStore(d).load(key) is not None

    def test_foreign_header_is_silent_miss(self, tmp_path):
        d = str(tmp_path / "store")
        os.makedirs(d)
        key = SummaryStore.key("o", "s", "i")
        with open(os.path.join(d, f"proc-{key}.pkl"), "wb") as fh:
            fh.write(b"# some other format entirely\n" + b"x" * 50)
        s = SummaryStore(d)
        assert s.load(key) is None
        assert s.counters["corrupt"] == 1

    def test_unwritable_directory_degrades_to_memory(self, tmp_path):
        # a path *beneath an existing file* cannot be created — the
        # same failure mode as a read-only dir, but works under root
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        s = SummaryStore(str(blocker / "sub"))
        key = SummaryStore.key("o", "s", "i")
        s.store(key, _dummy_summary())
        assert s.degraded
        assert s.counters["degraded"] == 1
        assert s.load(key).name == "f"  # memory tier still serves

    def test_key_sensitivity(self):
        k1 = SummaryStore.key("o", "s", "i")
        assert SummaryStore.key("o2", "s", "i") != k1
        assert SummaryStore.key("o", "s2", "i") != k1
        assert SummaryStore.key("o", "s", "i2") != k1

    def test_opts_fingerprint_covers_all_fields(self):
        base = opts_fingerprint(Options())
        assert opts_fingerprint(Options(nprocs=8)) != base
        assert opts_fingerprint(Options(strict=True)) != base
        assert opts_fingerprint(
            Options(clone_growth_limit=9.0)) != base


# ---------------------------------------------------------------------------
# service compiler: byte-identity and incrementality
# ---------------------------------------------------------------------------


APPS = [
    ("dgefa_dgesl", dgefa_dgesl_source),
    ("stencil2d", stencil2d_source),
    ("adi", adi_source),
    ("cg", cg_source),
    ("wave", wave_source),
]


class TestServiceCompilerIdentity:
    @pytest.mark.parametrize("name,srcfn", APPS)
    def test_byte_identical_to_cold_compile(self, name, srcfn, no_memo):
        src = srcfn()
        opts = Options(nprocs=4)
        cold = compile_program(src, opts)
        got, stats = ServiceCompiler().compile(src, opts)
        assert got.text() == cold.text()
        assert got.report == cold.report
        assert stats["compiled"] == stats["procs"]

    def test_warm_compile_reuses_everything(self, no_memo):
        sc = ServiceCompiler()
        sc.compile(BASE, Options(nprocs=4))
        _, stats = sc.compile(BASE, Options(nprocs=4))
        assert stats["reused"] == stats["procs"]
        assert stats["compiled"] == 0

    def test_warm_output_still_identical(self, no_memo):
        opts = Options(nprocs=4)
        cold = compile_program(BASE, opts)
        sc = ServiceCompiler()
        sc.compile(BASE, opts)
        got, _ = sc.compile(BASE, opts)
        assert got.text() == cold.text()
        res = got.run(cost=FREE)
        seq = run_sequential(parse(BASE)).arrays["x"].data
        assert np.allclose(res.gathered("x"), seq)

    def test_leaf_edit_recompiles_only_leaf(self, no_memo):
        sc = ServiceCompiler()
        sc.compile(BASE, Options(nprocs=4))
        got, stats = sc.compile(EDIT_LEAF, Options(nprocs=4))
        assert stats["compiled"] == 1
        assert stats["reused"] == stats["procs"] - 1
        assert got.text() == compile_program(
            EDIT_LEAF, Options(nprocs=4)).text()

    def test_interface_edit_recompiles_callers(self, no_memo):
        sc = ServiceCompiler()
        sc.compile(BASE, Options(nprocs=4))
        got, stats = sc.compile(EDIT_SHIFT, Options(nprocs=4))
        # smooth changed; its exports (overlap/pending comm) changed,
        # so main recompiles too — init must be reused
        assert stats["compiled"] == 2
        assert stats["reused"] == 1
        assert got.text() == compile_program(
            EDIT_SHIFT, Options(nprocs=4)).text()

    def test_option_change_is_a_different_key(self, no_memo):
        sc = ServiceCompiler()
        sc.compile(BASE, Options(nprocs=4))
        _, stats = sc.compile(BASE, Options(nprocs=8))
        assert stats["compiled"] == stats["procs"]

    def test_persistent_store_shared_across_compilers(self, tmp_path,
                                                      no_memo):
        d = str(tmp_path / "store")
        opts = Options(nprocs=4)
        ServiceCompiler(SummaryStore(d)).compile(BASE, opts)
        got, stats = ServiceCompiler(SummaryStore(d)).compile(BASE, opts)
        assert stats["reused"] == stats["procs"]
        assert got.text() == compile_program(BASE, opts).text()

    def test_deadline_raises_retryable(self, no_memo):
        sc = ServiceCompiler()
        with pytest.raises(ServiceError) as ei:
            sc.compile(BASE, Options(nprocs=4),
                       deadline=time.monotonic() - 1)
        assert ei.value.kind == "deadline"
        assert ei.value.retryable

    def test_rtr_demotion_preserved(self, no_memo):
        """Graceful degradation must survive the service path: a
        procedure the analyzer rejects demotes identically."""
        src = BASE.replace("x(i) = f(x(i + 5))",
                           "x(i) = f(x(i * i))")
        opts = Options(nprocs=4)
        cold = compile_program(src, opts)
        got, _ = ServiceCompiler().compile(src, opts)
        assert got.text() == cold.text()
        assert got.report.rtr_demotions == cold.report.rtr_demotions


class TestServiceCompilerWithPool:
    def test_pool_output_identical(self, no_memo):
        pool = WorkerPool(size=2, seed=0)
        try:
            opts = Options(nprocs=4)
            src = dgefa_dgesl_source()
            cold = compile_program(src, opts)
            got, stats = ServiceCompiler(pool=pool).compile(src, opts)
            assert got.text() == cold.text()
            assert got.report == cold.report
            assert pool.stats()["jobs_ok"] > 0
        finally:
            pool.close()

    def test_pool_run_results_identical(self, no_memo):
        pool = WorkerPool(size=2, seed=0)
        try:
            opts = Options(nprocs=4)
            cold = compile_program(BASE, opts)
            got, _ = ServiceCompiler(pool=pool).compile(BASE, opts)
            r1 = cold.run(cost=FREE)
            r2 = got.run(cost=FREE)
            assert np.array_equal(r1.gathered("x"), r2.gathered("x"))
            assert r1.stats.time_us == r2.stats.time_us
            assert r1.stats.messages == r2.stats.messages
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# daemon + client
# ---------------------------------------------------------------------------


@pytest.fixture
def daemon(tmp_path):
    path = sock_path(tmp_path)
    d = CompileDaemon(path, store_dir=str(tmp_path / "store"),
                      pool_size=0)
    t = d.serve_in_thread()
    yield d, path
    d.stop()
    t.join(timeout=5)


class TestDaemon:
    def test_ping(self, daemon):
        _, path = daemon
        rep = CompileClient(path).ping()
        assert rep["pong"] and rep["pid"] == os.getpid()

    def test_compile_identical_and_runs(self, daemon, no_memo):
        _, path = daemon
        opts = Options(nprocs=4)
        cold = compile_program(BASE, opts)
        got = CompileClient(path).compile(BASE, opts)
        assert got.text() == cold.text()
        r1, r2 = cold.run(cost=FREE), got.run(cost=FREE)
        assert np.array_equal(r1.gathered("x"), r2.gathered("x"))
        assert r1.stats.time_us == r2.stats.time_us

    def test_second_compile_hits_store(self, daemon, no_memo):
        _, path = daemon
        c = CompileClient(path)
        c.compile(BASE, Options(nprocs=4))
        c.compile(BASE, Options(nprocs=4))
        st = c.stats()
        assert st["completed"] == 2
        assert st["store"]["hits"] >= 3  # all of p/init/smooth reused

    def test_compile_error_is_structured_not_retryable(self, daemon):
        _, path = daemon
        with pytest.raises(ServiceError) as ei:
            CompileClient(path).compile("program p\nthis is not fortran")
        assert ei.value.kind == "compile-error"
        assert not ei.value.retryable

    def test_zero_deadline_expires_retryable(self, daemon):
        _, path = daemon
        with pytest.raises(ServiceError) as ei:
            CompileClient(path).compile(BASE, Options(nprocs=4),
                                        deadline_s=0.0)
        assert ei.value.kind == "deadline"
        assert ei.value.retryable

    def test_unknown_op_refused(self, daemon):
        _, path = daemon
        with pytest.raises(ServiceError) as ei:
            CompileClient(path).request({"op": "frobnicate"})
        assert ei.value.kind == "bad-request"

    def test_version_mismatch_refused(self, daemon):
        _, path = daemon
        with pytest.raises(ServiceError) as ei:
            CompileClient(path).request(
                {"op": "ping", "v": PROTOCOL_VERSION + 1})
        assert ei.value.kind == "bad-request"

    def test_shutdown_op(self, tmp_path):
        path = sock_path(tmp_path)
        d = CompileDaemon(path, pool_size=0)
        t = d.serve_in_thread()
        assert CompileClient(path).shutdown()["stopping"]
        t.join(timeout=5)
        assert not t.is_alive()
        assert not os.path.exists(path)


# ---------------------------------------------------------------------------
# client fallback
# ---------------------------------------------------------------------------


class TestFallback:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVER", raising=False)
        assert resolve_server(None) is None
        assert resolve_server("off") is None
        assert resolve_server("/x/y.sock") == "/x/y.sock"
        assert resolve_server("auto") is not None
        monkeypatch.setenv("REPRO_SERVER", "/env/path.sock")
        assert resolve_server(None) == "/env/path.sock"
        assert resolve_server("/arg/wins.sock") == "/arg/wins.sock"
        assert resolve_server("off") is None

    def test_unreachable_daemon_falls_back(self, no_memo):
        opts = Options(nprocs=4)
        tracer = Tracer()
        got, info = compile_with_fallback(
            BASE, opts, server="/nonexistent/fdc.sock", trace=tracer)
        assert info["used"] == "local"
        assert got.text() == compile_program(BASE, opts).text()
        falls = [e for e in tracer.host_events
                 if e.get("name") == "service.fallback"]
        assert len(falls) == 1

    def test_mid_request_death_falls_back(self, tmp_path, no_memo):
        """A server that accepts, reads the request, then slams the
        connection mid-reply must not break the client."""
        path = sock_path(tmp_path, "evil.sock")
        lst = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        lst.bind(path)
        lst.listen(1)

        def evil():
            conn, _ = lst.accept()
            recv_frame(conn)
            conn.sendall((500).to_bytes(4, "big") + b"partial")
            conn.close()

        t = threading.Thread(target=evil, daemon=True)
        t.start()
        try:
            opts = Options(nprocs=4)
            got, info = compile_with_fallback(BASE, opts, server=path,
                                              retries=0)
            assert info["used"] == "local"
            assert got.text() == compile_program(BASE, opts).text()
        finally:
            lst.close()

    def test_malformed_blob_falls_back(self, tmp_path, no_memo):
        """An ok-reply whose pickled payload is garbage is an
        infrastructure failure, not a result."""
        path = sock_path(tmp_path, "garbage.sock")
        lst = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        lst.bind(path)
        lst.listen(1)

        def garbage():
            conn, _ = lst.accept()
            recv_frame(conn)
            send_frame(conn, {"ok": True, "v": PROTOCOL_VERSION,
                              "blob": pack_blob({"not": "a program"})})
            conn.close()

        t = threading.Thread(target=garbage, daemon=True)
        t.start()
        try:
            opts = Options(nprocs=4)
            got, info = compile_with_fallback(BASE, opts, server=path,
                                              retries=0)
            assert info["used"] == "local"
            assert got.text() == compile_program(BASE, opts).text()
        finally:
            lst.close()

    def test_healthy_daemon_used(self, tmp_path, no_memo):
        path = sock_path(tmp_path)
        d = CompileDaemon(path, pool_size=0)
        t = d.serve_in_thread()
        try:
            got, info = compile_with_fallback(BASE, Options(nprocs=4),
                                              server=path)
            assert info["used"] == "server"
            assert got.text() == compile_program(
                BASE, Options(nprocs=4)).text()
        finally:
            d.stop()
            t.join(timeout=5)

    def test_no_server_compiles_locally(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVER", raising=False)
        got, info = compile_with_fallback(BASE, Options(nprocs=4))
        assert info["used"] == "local"


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCLI:
    def test_ping_and_shutdown_subcommands(self, tmp_path, capsys):
        path = sock_path(tmp_path)
        d = CompileDaemon(path, pool_size=0)
        t = d.serve_in_thread()
        try:
            assert cli_main(["ping", "--socket", path]) == 0
            assert "pong" in capsys.readouterr().out
            assert cli_main(["shutdown", "--socket", path]) == 0
        finally:
            d.stop()
            t.join(timeout=5)

    def test_ping_unreachable_fails(self, tmp_path, capsys):
        assert cli_main(["ping", "--socket",
                         str(tmp_path / "none.sock")]) == 1

    def test_compile_via_server_flag(self, tmp_path, capsys, no_memo):
        path = sock_path(tmp_path)
        d = CompileDaemon(path, pool_size=0)
        t = d.serve_in_thread()
        src_file = tmp_path / "p.fd"
        src_file.write_text(BASE)
        try:
            assert cli_main([str(src_file), "--server", path]) == 0
            out = capsys.readouterr().out
            _compile_cache.clear()
            cold = compile_program(BASE, Options(nprocs=4))
            assert cold.text() in out
        finally:
            d.stop()
            t.join(timeout=5)

    def test_server_flag_fallback_still_compiles(self, tmp_path,
                                                 capsys):
        src_file = tmp_path / "p.fd"
        src_file.write_text(BASE)
        assert cli_main([str(src_file), "--server",
                         str(tmp_path / "gone.sock")]) == 0
        assert "x(" in capsys.readouterr().out
